(** Concolic execution engine over MiniJava (the WeBridge substitute).

    Execution is driven by concrete inputs (existing tests, per §3.2 of the
    paper); alongside each concrete value the engine tracks a symbolic
    shadow ({!Sym}).  At every branch it records the *reason* for the
    outcome — the conjunction of literals over state paths that the
    evaluated (short-circuited) part of the guard established — and
    accumulates these facts into the path condition.  Following the
    paper's pruning strategy, only facts that mention a variable relevant
    to the semantic under check are kept (the full, unpruned condition is
    retained for the ablation experiment).

    When control reaches a *target statement* of the semantic, the engine
    snapshots the current path condition: that snapshot is what the SMT
    complement check ({!Smt.Solver.check_trace}) judges.

    Shadow-naming rules (the engine side of normalization):
    - a field read [o.f] has shadow [root(o) ^ "." ^ f], where [root(o)]
      is [o]'s own shadow path if any, else the runtime class of [o];
    - a local declared [var x: C = ...] whose initialiser has no shadow is
      given the fresh root [C] (class-canonical naming);
    - scalar constants shadow as themselves; arithmetic results are
      opaque (their guards contribute no facts). *)

open Minilang

type tagged = { v : Value.t; sym : Sym.t option }

let untagged v = { v; sym = None }

type hit = {
  h_target_sid : int;
  h_method : string;  (** qualified method containing the target *)
  h_entry : string;  (** test / entry function driving this execution *)
  h_pc : Smt.Formula.t list;  (** pruned path condition (conjunction) *)
  h_full_pc : Smt.Formula.t list;  (** unpruned path condition *)
  h_decisions : (int * bool) list;
      (** first-occurrence branch decisions of the enclosing frame *)
  h_locks_held : int;
  h_state : (string * Smt.Formula.value) list;
      (** concrete valuation of [config.capture_vars] at the hit, in
          rule vocabulary; empty unless capture was requested *)
}

type blocking_event = {
  be_sid : int;
  be_op : string;
  be_locks : int;  (** number of monitors held *)
  be_method : string;
  be_entry : string;
}

type config = {
  targets : int list;
  relevant_roots : string list;
  prune : bool;
  fuel : int;
  max_call_depth : int;
  capture_vars : string list;
      (** rule-vocabulary variables (e.g. ["Snapshot.ttl"; "nowTs"]) whose
          concrete values are snapshotted into [h_state] at each hit *)
}

let default_config =
  {
    targets = [];
    relevant_roots = [];
    prune = true;
    fuel = 200_000;
    max_call_depth = 400;
    capture_vars = [];
  }

type frame = {
  vars : (string, tagged) Hashtbl.t;
  self : tagged;
  qname : string;
  mutable decisions : (int * bool) list;  (** reversed *)
  mutable f_pc : Smt.Formula.t list;  (** pruned facts of this frame, newest first *)
  mutable f_full_pc : Smt.Formula.t list;
}

type state = {
  program : Ast.program;
  heap : Value.heap;
  mutable fuel_left : int;
  mutable locks : int list;
  mutable depth : int;
  mutable stack : frame list;  (** live call stack, innermost first *)
  mutable hits : hit list;
  mutable blocking : blocking_event list;
  mutable branches_total : int;
  mutable branches_recorded : int;
  mutable entry : string;
  mutable pc_cache : (Smt.Formula.t list * Smt.Formula.t list) option;
      (** memoized (pruned, full) snapshot; None when stale *)
  config : config;
}

(* The path condition at a program point is the concatenation of the facts
   of all *live* frames, outermost first: exactly the conditions along the
   execution-tree path from the entry function to the current statement.
   Facts established by calls that already returned are not part of any
   path to the target and must not leak into later checks.

   Sharing: per-frame fact lists are persistent cons-lists (sibling paths
   share their common-ancestry tails), the snapshot pair is memoized until
   the next recorded fact or frame push/pop — consecutive hits share the
   physically same lists — and formulas are hash-consed, so two snapshots
   with the same facts collapse to one [conj] node and one verdict-cache
   entry downstream. *)
let pc_snapshots (st : state) : Smt.Formula.t list * Smt.Formula.t list =
  match st.pc_cache with
  | Some snap -> snap
  | None ->
      let frames = List.rev st.stack in
      let snap =
        ( List.concat_map (fun f -> List.rev f.f_pc) frames,
          List.concat_map (fun f -> List.rev f.f_full_pc) frames )
      in
      st.pc_cache <- Some snap;
      snap

let stack_pc (st : state) : Smt.Formula.t list = fst (pc_snapshots st)

let stack_full_pc (st : state) : Smt.Formula.t list = snd (pc_snapshots st)

let create ?(config = default_config) (program : Ast.program) : state =
  {
    program;
    heap = Value.heap_create ();
    fuel_left = config.fuel;
    locks = [];
    depth = 0;
    stack = [];
    hits = [];
    blocking = [];
    branches_total = 0;
    branches_recorded = 0;
    entry = "<none>";
    pc_cache = None;
    config;
  }

let tick st =
  st.fuel_left <- st.fuel_left - 1;
  if st.fuel_left <= 0 then raise Interp.Out_of_fuel

let runtime_error loc fmt =
  Fmt.kstr (fun m -> raise (Interp.Runtime_error (m, loc))) fmt

(* ------------------------------------------------------------------ *)
(* Shadow helpers                                                      *)
(* ------------------------------------------------------------------ *)

let class_of_ref (st : state) (v : Value.t) : string option =
  match v with
  | Value.V_ref addr -> (
      match Value.heap_get st.heap addr with
      | Some (Value.C_obj o) -> Some o.Value.o_class
      | Some _ | None -> None)
  | Value.V_int _ | Value.V_bool _ | Value.V_str _ | Value.V_null -> None

(* Root path for a receiver.  Objects are named by their runtime class
   (class-canonical naming, matching {!Semantics.Translate}); the shadow
   path is only used when no class is available. *)
let root_of (st : state) (t : tagged) : string option =
  match class_of_ref st t.v with
  | Some c -> Some c
  | None -> ( match t.sym with Some s -> Sym.as_var s | None -> None)

(* term for one side of a comparison: the shadow *is* the term now, else
   the concrete scalar value *)
let term_of (t : tagged) : Smt.Formula.term option =
  match t.sym with
  | Some s -> Some s
  | None -> Sym.of_value t.v

let term_has_var = Sym.is_var

(* a signed atom fact, if expressible and non-trivial *)
let atom_fact (rel : Smt.Formula.rel) (a : tagged) (b : tagged) (holds : bool) :
    Smt.Formula.t option =
  match (term_of a, term_of b) with
  | Some ta, Some tb when term_has_var ta || term_has_var tb ->
      let rel = if holds then rel else Smt.Formula.negate_rel rel in
      Some (Smt.Formula.atom rel ta tb)
  | _ -> None

let combine (a : Smt.Formula.t option) (b : Smt.Formula.t option) :
    Smt.Formula.t option =
  match (a, b) with
  | None, x | x, None -> x
  | Some fa, Some fb -> Some (Smt.Formula.conj [ fa; fb ])

(* facts are conjunctions of literals; keep the conjuncts that mention a
   relevant root *)
let rec filter_relevant (roots : string list) (f : Smt.Formula.t) :
    Smt.Formula.t option =
  match Smt.Formula.view f with
  | Smt.Formula.And fs ->
      let kept = List.filter_map (filter_relevant roots) fs in
      if kept = [] then None else Some (Smt.Formula.conj kept)
  | Smt.Formula.Atom a -> if Sym.mentions_root roots a.Smt.Formula.lhs || Sym.mentions_root roots a.Smt.Formula.rhs then Some f else None
  | Smt.Formula.Not g -> (
      match filter_relevant roots g with
      | Some g' -> Some (Smt.Formula.negate g')
      | None -> None)
  | Smt.Formula.Or _ | Smt.Formula.True | Smt.Formula.False -> None

let record_fact (st : state) (frame : frame) (fact : Smt.Formula.t option) : unit =
  match fact with
  | None -> ()
  | Some f ->
      st.pc_cache <- None;
      frame.f_full_pc <- f :: frame.f_full_pc;
      let keep =
        if st.config.prune then filter_relevant st.config.relevant_roots f else Some f
      in
      (match keep with
      | Some f' ->
          frame.f_pc <- f' :: frame.f_pc;
          st.branches_recorded <- st.branches_recorded + 1
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Concrete-state capture (for witness-replay triage)                   *)
(* ------------------------------------------------------------------ *)

(* References are reported as opaque markers, never heap addresses, so
   captured states stay schedule-independent and comparable across runs;
   the markers still decide null atoms structurally (<obj> <> null). *)
let value_of_concrete : Value.t -> Smt.Formula.value = function
  | Value.V_int n -> Smt.Formula.V_int n
  | Value.V_bool b -> Smt.Formula.V_bool b
  | Value.V_str s -> Smt.Formula.V_str s
  | Value.V_null -> Smt.Formula.V_null
  | Value.V_ref _ -> Smt.Formula.V_str "<ref>"

(* Resolve one rule-vocabulary variable against the current frame.  A
   dotted path "C.f" reads field [f] of an object of runtime class [C]
   (self first, then frame locals in name order — deterministic); a bare
   name is a scalar local/param, else a class root whose mere existence
   answers null atoms.  Unresolvable names are simply omitted: downstream
   three-valued evaluation treats them as unknown. *)
let capture_state (st : state) (frame : frame) :
    (string * Smt.Formula.value) list =
  let object_of_class cls =
    let of_tagged t =
      match class_of_ref st t.v with
      | Some c when c = cls -> Some t.v
      | Some _ | None -> None
    in
    match of_tagged frame.self with
    | Some v -> Some v
    | None -> (
        let candidates =
          Hashtbl.fold
            (fun name t acc ->
              match of_tagged t with
              | Some v -> (name, v) :: acc
              | None -> acc)
            frame.vars []
        in
        match
          List.sort (fun (a, _) (b, _) -> String.compare a b) candidates
        with
        | (_, v) :: _ -> Some v
        | [] -> None)
  in
  List.filter_map
    (fun var ->
      match String.index_opt var '.' with
      | Some i -> (
          let cls = String.sub var 0 i in
          let fld = String.sub var (i + 1) (String.length var - i - 1) in
          match object_of_class cls with
          | Some (Value.V_ref addr) -> (
              match Value.heap_get st.heap addr with
              | Some (Value.C_obj obj) -> (
                  match Value.obj_get obj fld with
                  | Some v -> Some (var, value_of_concrete v)
                  | None -> None)
              | Some _ | None -> None)
          | Some _ | None -> None)
      | None -> (
          match Hashtbl.find_opt frame.vars var with
          | Some t -> (
              match t.v with
              | Value.V_ref _ -> Some (var, Smt.Formula.V_str "<obj>")
              | v -> Some (var, value_of_concrete v))
          | None ->
              if object_of_class var <> None then
                Some (var, Smt.Formula.V_str "<obj>")
              else None))
    st.config.capture_vars

(* ------------------------------------------------------------------ *)
(* Builtins (concrete semantics shared with Interp, shadows dropped)    *)
(* ------------------------------------------------------------------ *)

let as_int loc = function
  | Value.V_int n -> n
  | v -> runtime_error loc "expected int, got %s" (Value.type_name v)

let as_str loc = function
  | Value.V_str s -> s
  | v -> runtime_error loc "expected str, got %s" (Value.type_name v)

let as_map st loc = function
  | Value.V_ref addr -> (
      match Value.heap_get st.heap addr with
      | Some (Value.C_map m) -> m
      | _ -> runtime_error loc "expected map reference")
  | Value.V_null -> runtime_error loc "null map dereference"
  | v -> runtime_error loc "expected map, got %s" (Value.type_name v)

let as_list st loc = function
  | Value.V_ref addr -> (
      match Value.heap_get st.heap addr with
      | Some (Value.C_list l) -> l
      | _ -> runtime_error loc "expected list reference")
  | Value.V_null -> runtime_error loc "null list dereference"
  | v -> runtime_error loc "expected list, got %s" (Value.type_name v)

let call_builtin (st : state) (frame : frame) ~sid ~loc name (args : tagged list) :
    tagged =
  let argv = List.map (fun t -> t.v) args in
  let blocking op =
    st.blocking <-
      {
        be_sid = sid;
        be_op = op;
        be_locks = List.length st.locks;
        be_method = frame.qname;
        be_entry = st.entry;
      }
      :: st.blocking
  in
  let ret v = untagged v in
  match (name, argv) with
  | "mapNew", [] -> ret (Value.V_ref (Value.heap_alloc st.heap (Value.C_map (ref []))))
  | "mapGet", [ m; k ] -> (
      match Value.map_get (as_map st loc m) k with
      | Some v -> ret v
      | None -> ret Value.V_null)
  | "mapPut", [ m; k; v ] ->
      Value.map_put (as_map st loc m) k v;
      ret Value.V_null
  | "mapRemove", [ m; k ] ->
      Value.map_remove (as_map st loc m) k;
      ret Value.V_null
  | "mapContains", [ m; k ] -> ret (Value.V_bool (Value.map_contains (as_map st loc m) k))
  | "mapSize", [ m ] -> ret (Value.V_int (List.length !(as_map st loc m)))
  | "mapKeys", [ m ] ->
      let keys = List.map fst !(as_map st loc m) in
      ret (Value.V_ref (Value.heap_alloc st.heap (Value.C_list (ref keys))))
  | "listNew", [] -> ret (Value.V_ref (Value.heap_alloc st.heap (Value.C_list (ref []))))
  | "listAdd", [ l; v ] ->
      let cell = as_list st loc l in
      cell := !cell @ [ v ];
      ret Value.V_null
  | "listGet", [ l; i ] -> (
      let cell = as_list st loc l in
      let i = as_int loc i in
      match List.nth_opt !cell i with
      | Some v -> ret v
      | None -> runtime_error loc "list index %d out of bounds" i)
  | "listSet", [ l; i; v ] ->
      let cell = as_list st loc l in
      let i = as_int loc i in
      if i < 0 || i >= List.length !cell then runtime_error loc "index out of bounds";
      cell := List.mapi (fun j x -> if j = i then v else x) !cell;
      ret Value.V_null
  | "listSize", [ l ] -> ret (Value.V_int (List.length !(as_list st loc l)))
  | "listContains", [ l; v ] ->
      ret (Value.V_bool (List.exists (Value.equal v) !(as_list st loc l)))
  | "listRemoveAt", [ l; i ] ->
      let cell = as_list st loc l in
      let i = as_int loc i in
      cell := List.filteri (fun j _ -> j <> i) !cell;
      ret Value.V_null
  | "toStr", [ v ] -> ret (Value.V_str (Value.to_string ~heap:st.heap v))
  | "strLen", [ s ] -> ret (Value.V_int (String.length (as_str loc s)))
  | "concat", [ a; b ] -> ret (Value.V_str (as_str loc a ^ as_str loc b))
  | "startsWith", [ s; p ] ->
      let s = as_str loc s and p = as_str loc p in
      ret
        (Value.V_bool
           (String.length p <= String.length s && String.sub s 0 (String.length p) = p))
  | "abs", [ n ] -> ret (Value.V_int (abs (as_int loc n)))
  | "min", [ a; b ] -> ret (Value.V_int (min (as_int loc a) (as_int loc b)))
  | "max", [ a; b ] -> ret (Value.V_int (max (as_int loc a) (as_int loc b)))
  | "now", [] -> ret (Value.V_int (st.config.fuel - st.fuel_left))
  | "print", [ _ ] | "log", [ _ ] -> ret Value.V_null
  | "fail", [ v ] -> raise (Interp.Mini_throw v)
  | "writeRecord", [ _ ] ->
      blocking "writeRecord";
      ret Value.V_null
  | "readRecord", [ v ] ->
      blocking "readRecord";
      ret v
  | "networkSend", [ _; _ ] ->
      blocking "networkSend";
      ret Value.V_null
  | "networkRecv", [ v ] ->
      blocking "networkRecv";
      ret v
  | "fsync", [ _ ] ->
      blocking "fsync";
      ret Value.V_null
  | "rpcCall", [ _; v ] ->
      blocking "rpcCall";
      ret v
  | "sleepMs", [ _ ] ->
      blocking "sleepMs";
      ret Value.V_null
  | _ -> runtime_error loc "builtin %s: bad arity (%d args)" name (List.length argv)

(* ------------------------------------------------------------------ *)
(* Expression evaluation with shadows                                  *)
(* ------------------------------------------------------------------ *)

type flow = F_normal | F_return of tagged | F_break | F_continue

let rec eval (st : state) (frame : frame) (e : Ast.expr) : tagged =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Int_lit n -> { v = Value.V_int n; sym = Some (Smt.Formula.tint n) }
  | Ast.Bool_lit b -> { v = Value.V_bool b; sym = Some (Smt.Formula.tbool b) }
  | Ast.Str_lit s -> { v = Value.V_str s; sym = Some (Smt.Formula.tstr s) }
  | Ast.Null_lit -> { v = Value.V_null; sym = Some Smt.Formula.tnull }
  | Ast.This -> frame.self
  | Ast.Var x -> (
      match Hashtbl.find_opt frame.vars x with
      | Some t -> t
      | None -> runtime_error loc "unbound variable %s" x)
  | Ast.Field (o, f) -> (
      let ot = eval st frame o in
      match ot.v with
      | Value.V_ref addr -> (
          match Value.heap_get st.heap addr with
          | Some (Value.C_obj obj) -> (
              match Value.obj_get obj f with
              | Some v ->
                  let sym =
                    match root_of st ot with
                    | Some root -> Some (Sym.var (root ^ "." ^ f))
                    | None -> None
                  in
                  { v; sym }
              | None -> runtime_error loc "object %s has no field %s" obj.Value.o_class f)
          | Some _ -> runtime_error loc "field access %s on non-object" f
          | None -> runtime_error loc "dangling reference")
      | Value.V_null -> runtime_error loc "null dereference reading field %s" f
      | v -> runtime_error loc "field access %s on %s" f (Value.type_name v))
  | Ast.Binop _ | Ast.Unop _ ->
      (* boolean-typed expressions get facts via eval_bool; in value
         position we still want correct concrete semantics *)
      let v, _fact, sym = eval_complex st frame e in
      { v; sym }
  | Ast.Call (name, args) ->
      let argt = List.map (eval st frame) args in
      if Builtins.is_builtin name then call_builtin st frame ~sid:(-1) ~loc name argt
      else (
        match Ast.find_func st.program name with
        | Some f -> invoke st ~qname:name f (untagged Value.V_null) argt loc
        | None -> runtime_error loc "unknown function %s" name)
  | Ast.Method_call (o, m, args) -> (
      let ot = eval st frame o in
      let argt = List.map (eval st frame) args in
      match ot.v with
      | Value.V_ref addr -> (
          match Value.heap_get st.heap addr with
          | Some (Value.C_obj obj) -> (
              match Ast.find_class st.program obj.Value.o_class with
              | None -> runtime_error loc "object of unknown class %s" obj.Value.o_class
              | Some cls -> (
                  match Ast.find_method_in_class cls m with
                  | Some md -> invoke st ~qname:(cls.Ast.c_name ^ "." ^ m) md ot argt loc
                  | None -> runtime_error loc "class %s has no method %s" cls.Ast.c_name m))
          | Some _ -> runtime_error loc "method call %s on non-object" m
          | None -> runtime_error loc "dangling reference")
      | Value.V_null -> runtime_error loc "null dereference calling method %s" m
      | v -> runtime_error loc "method call %s on %s" m (Value.type_name v))
  | Ast.New (cls_name, args) -> (
      match Ast.find_class st.program cls_name with
      | None -> runtime_error loc "unknown class %s" cls_name
      | Some cls ->
          let obj = Value.new_obj ~cls:cls_name in
          let addr = Value.heap_alloc st.heap (Value.C_obj obj) in
          let self = untagged (Value.V_ref addr) in
          List.iter
            (fun (fd : Ast.field_decl) ->
              let v =
                match fd.Ast.f_init with
                | Some e -> (eval st frame e).v
                | None -> (
                    match fd.Ast.f_typ with
                    | Ast.T_int -> Value.V_int 0
                    | Ast.T_bool -> Value.V_bool false
                    | Ast.T_str -> Value.V_str ""
                    | Ast.T_map -> Value.V_ref (Value.heap_alloc st.heap (Value.C_map (ref [])))
                    | Ast.T_list ->
                        Value.V_ref (Value.heap_alloc st.heap (Value.C_list (ref [])))
                    | Ast.T_ref _ | Ast.T_void | Ast.T_any -> Value.V_null)
              in
              Value.obj_set obj fd.Ast.f_name v)
            cls.Ast.c_fields;
          let argt = List.map (eval st frame) args in
          (match Ast.find_method_in_class cls "init" with
          | Some md -> ignore (invoke st ~qname:(cls_name ^ ".init") md self argt loc)
          | None ->
              if argt <> [] then
                runtime_error loc "class %s has no init method but 'new' got args" cls_name);
          self)

(* Evaluate a boolean expression: concrete result plus the *fact* (signed
   conjunction of literals) the evaluation established.  Also returns the
   shadow for value position. *)
and eval_complex (st : state) (frame : frame) (e : Ast.expr) :
    Value.t * Smt.Formula.t option * Sym.t option =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Binop (Ast.And, a, b) -> (
      let va, fa, _ = eval_complex st frame a in
      match va with
      | Value.V_bool false -> (Value.V_bool false, fa, None)
      | Value.V_bool true ->
          let vb, fb, _ = eval_complex st frame b in
          (match vb with
          | Value.V_bool _ -> (vb, combine fa fb, None)
          | v -> runtime_error loc "'&&' applied to %s" (Value.type_name v))
      | v -> runtime_error loc "'&&' applied to %s" (Value.type_name v))
  | Ast.Binop (Ast.Or, a, b) -> (
      let va, fa, _ = eval_complex st frame a in
      match va with
      | Value.V_bool true -> (Value.V_bool true, fa, None)
      | Value.V_bool false ->
          let vb, fb, _ = eval_complex st frame b in
          (match vb with
          | Value.V_bool _ -> (vb, combine fa fb, None)
          | v -> runtime_error loc "'||' applied to %s" (Value.type_name v))
      | v -> runtime_error loc "'||' applied to %s" (Value.type_name v))
  | Ast.Unop (Ast.Not, a) -> (
      let va, fa, _ = eval_complex st frame a in
      match va with
      | Value.V_bool b -> (Value.V_bool (not b), fa, None)
      | v -> runtime_error loc "'!' applied to %s" (Value.type_name v))
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    -> (
      let ta = eval st frame a in
      let tb = eval st frame b in
      let concrete =
        match op with
        | Ast.Eq -> Some (Value.equal ta.v tb.v)
        | Ast.Neq -> Some (not (Value.equal ta.v tb.v))
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
            match (ta.v, tb.v) with
            | Value.V_int x, Value.V_int y ->
                Some
                  (match op with
                  | Ast.Lt -> x < y
                  | Ast.Le -> x <= y
                  | Ast.Gt -> x > y
                  | Ast.Ge -> x >= y
                  | _ -> assert false)
            | Value.V_str x, Value.V_str y when op = Ast.Lt -> Some (x < y)
            | Value.V_str x, Value.V_str y when op = Ast.Gt -> Some (x > y)
            | _ -> None)
        | _ -> None
      in
      match concrete with
      | None ->
          runtime_error loc "'%s' applied to %s and %s" (Ast.binop_to_string op)
            (Value.type_name ta.v) (Value.type_name tb.v)
      | Some holds ->
          let rel =
            match op with
            | Ast.Eq -> Smt.Formula.Req
            | Ast.Neq -> Smt.Formula.Rneq
            | Ast.Lt -> Smt.Formula.Rlt
            | Ast.Le -> Smt.Formula.Rle
            | Ast.Gt -> Smt.Formula.Rgt
            | Ast.Ge -> Smt.Formula.Rge
            | _ -> assert false
          in
          let fact =
            (* only atoms where both sides are pure state/constants *)
            atom_fact rel ta tb holds
          in
          (Value.V_bool holds, fact, None))
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b) -> (
      let ta = eval st frame a in
      let tb = eval st frame b in
      match (ta.v, tb.v) with
      | Value.V_int x, Value.V_int y ->
          let r =
            match op with
            | Ast.Add -> x + y
            | Ast.Sub -> x - y
            | Ast.Mul -> x * y
            | Ast.Div -> if y = 0 then runtime_error loc "division by zero" else x / y
            | Ast.Mod -> if y = 0 then runtime_error loc "modulo by zero" else x mod y
            | _ -> assert false
          in
          (Value.V_int r, None, None)
      | Value.V_str x, _ when op = Ast.Add ->
          (Value.V_str (x ^ Value.to_string ~heap:st.heap tb.v), None, None)
      | x, y ->
          runtime_error loc "'%s' applied to %s and %s" (Ast.binop_to_string op)
            (Value.type_name x) (Value.type_name y))
  | Ast.Unop (Ast.Neg, a) -> (
      match (eval st frame a).v with
      | Value.V_int n -> (Value.V_int (-n), None, None)
      | v -> runtime_error loc "unary '-' applied to %s" (Value.type_name v))
  | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Str_lit _ | Ast.Null_lit | Ast.Var _
  | Ast.This | Ast.Field _ | Ast.Call _ | Ast.Method_call _ | Ast.New _ -> (
      (* boolean-valued simple expression used as a guard *)
      let t = eval st frame e in
      match t.v with
      | Value.V_bool b ->
          let fact =
            match Option.bind t.sym Sym.as_var with
            | Some p ->
                Some
                  (Smt.Formula.eq (Smt.Formula.tvar p) (Smt.Formula.tbool b))
            | None -> None
          in
          (t.v, fact, t.sym)
      | _ -> (t.v, None, t.sym))

(* Full guard evaluation: concrete bool + recorded fact *)
and eval_guard (st : state) (frame : frame) (e : Ast.expr) : bool =
  let v, fact, _ = eval_complex st frame e in
  match v with
  | Value.V_bool b ->
      st.branches_total <- st.branches_total + 1;
      record_fact st frame fact;
      b
  | v -> runtime_error e.Ast.eloc "condition is %s, not bool" (Value.type_name v)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_block (st : state) (frame : frame) (b : Ast.block) : flow =
  match b with
  | [] -> F_normal
  | stmt :: rest -> (
      match exec_stmt st frame stmt with
      | F_normal -> exec_block st frame rest
      | (F_return _ | F_break | F_continue) as f -> f)

and exec_stmt (st : state) (frame : frame) (stmt : Ast.stmt) : flow =
  tick st;
  let loc = stmt.Ast.sloc in
  (* target instrumentation: snapshot the path condition on arrival *)
  if List.mem stmt.Ast.sid st.config.targets then
    st.hits <-
      {
        h_target_sid = stmt.Ast.sid;
        h_method = frame.qname;
        h_entry = st.entry;
        h_pc = stack_pc st;
        h_full_pc = stack_full_pc st;
        h_decisions = List.rev frame.decisions;
        h_locks_held = List.length st.locks;
        h_state =
          (if st.config.capture_vars = [] then []
           else capture_state st frame);
      }
      :: st.hits;
  match stmt.Ast.s with
  | Ast.Decl (x, ty, init) ->
      let t =
        match init with Some e -> eval st frame e | None -> untagged Value.V_null
      in
      let t =
        (* class-canonical naming for opaque object sources *)
        match (t.sym, ty) with
        | None, Ast.T_ref c when Ast.find_class st.program c <> None ->
            { t with sym = Some (Sym.var c) }
        | _ -> t
      in
      Hashtbl.replace frame.vars x t;
      F_normal
  | Ast.Assign (Ast.Lv_var x, e) ->
      Hashtbl.replace frame.vars x (eval st frame e);
      F_normal
  | Ast.Assign (Ast.Lv_field (o, f), e) -> (
      let ot = eval st frame o in
      let t = eval st frame e in
      match ot.v with
      | Value.V_ref addr -> (
          match Value.heap_get st.heap addr with
          | Some (Value.C_obj obj) ->
              Value.obj_set obj f t.v;
              F_normal
          | Some _ -> runtime_error loc "field write %s on non-object" f
          | None -> runtime_error loc "dangling reference")
      | Value.V_null -> runtime_error loc "null dereference writing field %s" f
      | v -> runtime_error loc "field write %s on %s" f (Value.type_name v))
  | Ast.If (cond, b1, b2) ->
      let taken = eval_guard st frame cond in
      if not (List.mem_assoc stmt.Ast.sid frame.decisions) then
        frame.decisions <- (stmt.Ast.sid, taken) :: frame.decisions;
      if taken then exec_block st frame b1 else exec_block st frame b2
  | Ast.While (cond, body) ->
      let rec loop first =
        let taken = eval_guard st frame cond in
        if first && not (List.mem_assoc stmt.Ast.sid frame.decisions) then
          frame.decisions <- (stmt.Ast.sid, taken) :: frame.decisions;
        if not taken then F_normal
        else (
          tick st;
          match exec_block st frame body with
          | F_normal | F_continue -> loop false
          | F_break -> F_normal
          | F_return _ as f -> f)
      in
      loop true
  | Ast.Return None -> F_return (untagged Value.V_null)
  | Ast.Return (Some e) -> F_return (eval st frame e)
  | Ast.Throw e -> raise (Interp.Mini_throw (eval st frame e).v)
  | Ast.Try (body, exn_var, handler) -> (
      try exec_block st frame body
      with Interp.Mini_throw v ->
        Hashtbl.replace frame.vars exn_var (untagged v);
        exec_block st frame handler)
  | Ast.Sync (obj_e, body) -> (
      let ot = eval st frame obj_e in
      let addr =
        match ot.v with
        | Value.V_ref a -> a
        | v -> runtime_error loc "synchronized on %s" (Value.type_name v)
      in
      st.locks <- addr :: st.locks;
      let release () =
        match st.locks with
        | a :: rest when a = addr -> st.locks <- rest
        | _ -> st.locks <- List.filter (fun a -> a <> addr) st.locks
      in
      match exec_block st frame body with
      | f ->
          release ();
          f
      | exception e ->
          release ();
          raise e)
  | Ast.Expr e ->
      (match e.Ast.e with
      | Ast.Call (name, args) when Builtins.is_builtin name ->
          let argt = List.map (eval st frame) args in
          ignore (call_builtin st frame ~sid:stmt.Ast.sid ~loc:e.Ast.eloc name argt)
      | _ -> ignore (eval st frame e));
      F_normal
  | Ast.Assert (cond, msg) -> (
      match (eval st frame cond).v with
      | Value.V_bool true -> F_normal
      | Value.V_bool false -> raise (Interp.Assertion_failure (msg, stmt.Ast.sid))
      | v -> runtime_error loc "assert condition is %s" (Value.type_name v))
  | Ast.Break -> F_break
  | Ast.Continue -> F_continue

and invoke (st : state) ~qname (m : Ast.method_decl) (self : tagged)
    (args : tagged list) (loc : Loc.t) : tagged =
  if st.depth >= st.config.max_call_depth then
    runtime_error loc "call depth limit exceeded calling %s" qname;
  if List.length args <> List.length m.Ast.m_params then
    runtime_error loc "%s expects %d args, got %d" qname (List.length m.Ast.m_params)
      (List.length args);
  let vars = Hashtbl.create 16 in
  List.iter2
    (fun (p, ty) t ->
      let t =
        match ty with
        (* class-canonical naming for object parameters without a shadow *)
        | Ast.T_ref c when t.sym = None && Ast.find_class st.program c <> None ->
            { t with sym = Some (Sym.var c) }
        (* scalar parameters are symbolic inputs named by the parameter, so
           that rule conditions mentioning a parameter (e.g. a TTL or an
           epoch argument) meet the trace in the same vocabulary *)
        | Ast.T_int | Ast.T_str | Ast.T_bool -> { t with sym = Some (Sym.var p) }
        | Ast.T_ref _ | Ast.T_map | Ast.T_list | Ast.T_void | Ast.T_any -> t
      in
      Hashtbl.replace vars p t)
    m.Ast.m_params args;
  let frame = { vars; self; qname; decisions = []; f_pc = []; f_full_pc = [] } in
  st.depth <- st.depth + 1;
  st.stack <- frame :: st.stack;
  st.pc_cache <- None;
  let finish () =
    st.depth <- st.depth - 1;
    st.stack <- (match st.stack with _ :: rest -> rest | [] -> []);
    st.pc_cache <- None
  in
  match exec_block st frame m.Ast.m_body with
  | F_normal ->
      finish ();
      untagged Value.V_null
  | F_return t ->
      finish ();
      t
  | F_break | F_continue ->
      finish ();
      runtime_error loc "break/continue outside loop in %s" qname
  | exception e ->
      finish ();
      raise e

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type run_result = {
  r_entry : string;
  r_outcome : Interp.test_outcome;
  r_hits : hit list;  (** in execution order *)
  r_blocking : blocking_event list;  (** in execution order *)
  r_branches_total : int;
  r_branches_recorded : int;
}

let skipped_run (entry : string) (msg : string) : run_result =
  {
    r_entry = entry;
    r_outcome = Interp.Errored msg;
    r_hits = [];
    r_blocking = [];
    r_branches_total = 0;
    r_branches_recorded = 0;
  }

(** Run one entry function (usually a test) under the concolic engine.

    The run is an injection point ({!Resilience.Fault.Concolic}): a
    faulted run either raises {!Resilience.Fault.Injected}
    (crash/transient — the engine's job retry handles it) or degrades
    to an out-of-fuel outcome (budget).  An open circuit breaker skips
    the run entirely; genuine fuel exhaustion trips the breaker the
    same way an injected budget fault does. *)
let run ?(config = default_config) (program : Ast.program) (entry : string) :
    run_result =
  Telemetry.Trace.with_span ~cat:"symexec" ~args:[ ("entry", entry) ]
    "concolic.run"
  @@ fun () ->
  if not (Resilience.Breaker.proceed Resilience.Fault.Concolic) then
    skipped_run entry "circuit open: concolic run skipped"
  else
    match Resilience.Injector.draw Resilience.Fault.Concolic with
    | Some (Resilience.Fault.Crash | Resilience.Fault.Transient) as k ->
        Resilience.Injector.raise_fault Resilience.Fault.Concolic (Option.get k)
    | Some Resilience.Fault.Budget ->
        Resilience.Breaker.failure Resilience.Fault.Concolic;
        skipped_run entry "out of fuel (injected)"
    | None ->
        let st = create ~config program in
        st.entry <- entry;
        let outcome =
          match Ast.find_func program entry with
          | None -> Interp.Errored (Fmt.str "no entry function %s" entry)
          | Some f -> (
              match invoke st ~qname:entry f (untagged Value.V_null) [] Loc.dummy with
              | _ -> Interp.Passed
              | exception Interp.Assertion_failure (msg, sid) ->
                  Interp.Failed (Fmt.str "%s (at statement %d)" msg sid)
              | exception Interp.Mini_throw v ->
                  Interp.Errored (Fmt.str "uncaught throw: %s" (Value.to_string v))
              | exception Interp.Runtime_error (msg, loc) ->
                  Interp.Errored (Fmt.str "runtime error: %s at %a" msg Loc.pp loc)
              | exception Interp.Out_of_fuel -> Interp.Errored "out of fuel")
        in
        (match outcome with
        | Interp.Errored "out of fuel" ->
            Resilience.Breaker.failure Resilience.Fault.Concolic
        | _ -> Resilience.Breaker.success Resilience.Fault.Concolic);
        {
          r_entry = entry;
          r_outcome = outcome;
          r_hits = List.rev st.hits;
          r_blocking = List.rev st.blocking;
          r_branches_total = st.branches_total;
          r_branches_recorded = st.branches_recorded;
        }

(** Run several entries, concatenating results. *)
let run_all ?(config = default_config) (program : Ast.program)
    (entries : string list) : run_result list =
  List.map (fun e -> run ~config program e) entries

let hit_pc_formula (h : hit) : Smt.Formula.t = Smt.Formula.conj h.h_pc

(* The raw snapshot is already decision-ordered: [pc_snapshots] reverses
   the frame stack (outermost call first) and each frame's facts
   (recording order), so the list reads outermost decision to innermost.
   That is exactly the order the path-condition trie needs — two hits
   share a snapshot prefix iff their executions took the same first
   decisions — and the facts are interned formulas, so prefix sharing is
   physical (id-keyed), not structural. *)
let hit_pc_snapshot (h : hit) : Smt.Formula.t list = h.h_pc

let hit_full_pc_formula (h : hit) : Smt.Formula.t = Smt.Formula.conj h.h_full_pc

let hit_to_string (h : hit) =
  Fmt.str "hit@%d in %s (entry %s): pc = %s" h.h_target_sid h.h_method h.h_entry
    (Smt.Formula.to_string (hit_pc_formula h))
