(** A structured rule language for developers (§5, open question ii).

    "Besides mining low-level semantics from existing resources, another
    approach is to enable developers to explicitly express these semantic
    rules in a more effective way … a structured prompt template to
    describe expected behaviors."

    The DSL is line-oriented; one rule per block:

    {v
      rule zk.ephemeral-closing:
        because "ephemeral nodes must die with their session"
        when calling createEphemeralNode
        require Session != null && Session.closing == false

      rule zk.prep-only:
        when calling createEphemeralNode in PrepRequestProcessor.pRequest2TxnCreate
        require Session != null

      rule zk.serialize:
        because "writers must never stall behind a monitor"
        forbid blocking under lock

      rule zk.serialize-here:
        forbid blocking under lock in SyncRequestProcessor.serializeNode
    v}

    - [because "<text>"] (optional) records the high-level semantics;
    - [when calling <callee> [in <Qualified.method>]] targets statements;
    - [when at "<statement text>"] targets by canonical statement text;
    - [require <expr>] gives the condition in MiniJava expression syntax —
      identifiers are state paths exactly as the checker reports them
      (class-canonical roots such as [Session.closing]);
    - [forbid blocking under lock [in <Qualified.method>]] declares a
      lock-discipline rule.

    Conditions are parsed with the MiniJava expression parser and
    translated structurally (no program context is needed because paths
    are already canonical). *)

exception Parse_error of string * int  (** message, 1-based line *)

(* ------------------------------------------------------------------ *)
(* Condition translation: MiniJava expression -> checker formula        *)
(* ------------------------------------------------------------------ *)

let rec term_of_expr (e : Minilang.Ast.expr) : Smt.Formula.term option =
  match e.Minilang.Ast.e with
  | Minilang.Ast.Int_lit n -> Some (Smt.Formula.tint n)
  | Minilang.Ast.Bool_lit b -> Some (Smt.Formula.tbool b)
  | Minilang.Ast.Str_lit s -> Some (Smt.Formula.tstr s)
  | Minilang.Ast.Null_lit -> Some Smt.Formula.tnull
  | Minilang.Ast.Var x -> Some (Smt.Formula.tvar x)
  | Minilang.Ast.Field (o, f) ->
      Option.map
        (fun t ->
          match Smt.Formula.term_view t with
          | Smt.Formula.T_var p -> Smt.Formula.tvar (p ^ "." ^ f)
          | _ -> t)
        (term_of_expr o)
  | Minilang.Ast.Unop (Minilang.Ast.Neg, { e = Minilang.Ast.Int_lit n; _ }) ->
      Some (Smt.Formula.tint (-n))
  | Minilang.Ast.This | Minilang.Ast.Binop _ | Minilang.Ast.Unop _
  | Minilang.Ast.Call _ | Minilang.Ast.Method_call _ | Minilang.Ast.New _ ->
      None

let rec formula_of_expr (e : Minilang.Ast.expr) : Smt.Formula.t option =
  match e.Minilang.Ast.e with
  | Minilang.Ast.Bool_lit true -> Some Smt.Formula.tru
  | Minilang.Ast.Bool_lit false -> Some Smt.Formula.fls
  | Minilang.Ast.Unop (Minilang.Ast.Not, a) ->
      Option.map Smt.Formula.negate (formula_of_expr a)
  | Minilang.Ast.Binop (Minilang.Ast.And, a, b) -> (
      match (formula_of_expr a, formula_of_expr b) with
      | Some fa, Some fb -> Some (Smt.Formula.conj [ fa; fb ])
      | _ -> None)
  | Minilang.Ast.Binop (Minilang.Ast.Or, a, b) -> (
      match (formula_of_expr a, formula_of_expr b) with
      | Some fa, Some fb -> Some (Smt.Formula.disj [ fa; fb ])
      | _ -> None)
  | Minilang.Ast.Binop (op, a, b) -> (
      let rel =
        match op with
        | Minilang.Ast.Eq -> Some Smt.Formula.Req
        | Minilang.Ast.Neq -> Some Smt.Formula.Rneq
        | Minilang.Ast.Lt -> Some Smt.Formula.Rlt
        | Minilang.Ast.Le -> Some Smt.Formula.Rle
        | Minilang.Ast.Gt -> Some Smt.Formula.Rgt
        | Minilang.Ast.Ge -> Some Smt.Formula.Rge
        | _ -> None
      in
      match rel with
      | None -> None
      | Some rel -> (
          match (term_of_expr a, term_of_expr b) with
          | Some ta, Some tb -> Some (Smt.Formula.atom rel ta tb)
          | _ -> None))
  | Minilang.Ast.Var _ | Minilang.Ast.Field _ ->
      (* bare boolean path: [Session.closing] means it is true *)
      Option.map
        (fun t ->
          match Smt.Formula.term_view t with
          | Smt.Formula.T_var p -> Smt.Formula.bvar p
          | _ -> Smt.Formula.tru)
        (term_of_expr e)
  | Minilang.Ast.Int_lit _ | Minilang.Ast.Str_lit _ | Minilang.Ast.Null_lit
  | Minilang.Ast.This | Minilang.Ast.Call _ | Minilang.Ast.Method_call _
  | Minilang.Ast.New _
  | Minilang.Ast.Unop (Minilang.Ast.Neg, _) ->
      None

(** Parse a condition written in the DSL's expression syntax. *)
let parse_condition ?(line = 0) (text : string) : Smt.Formula.t =
  match Minilang.Parser.expression text with
  | exception Minilang.Parser.Error (m, _) ->
      raise (Parse_error (Fmt.str "bad condition %S: %s" text m, line))
  | exception Minilang.Lexer.Error (m, _) ->
      raise (Parse_error (Fmt.str "bad condition %S: %s" text m, line))
  | e -> (
      match formula_of_expr e with
      | Some f -> Smt.Formula.simplify f
      | None ->
          raise
            (Parse_error
               ( Fmt.str
                   "condition %S is outside the predicate fragment (state \
                    relations, null checks, integer bounds)"
                   text,
                 line )))

(* ------------------------------------------------------------------ *)
(* Block parsing                                                       *)
(* ------------------------------------------------------------------ *)

type partial = {
  mutable p_id : string;
  mutable p_because : string option;
  mutable p_target : Rule.target_spec option;
  mutable p_condition : Smt.Formula.t option;
  mutable p_lock_scope : Rule.lock_scope option;
  p_line : int;
}

let strip (s : string) : string = String.trim s

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let after prefix s = strip (String.sub s (String.length prefix) (String.length s - String.length prefix))

(* split "callee in Qualified.method" *)
let parse_call_target (rest : string) : Rule.target_spec =
  match String.index_opt rest ' ' with
  | None -> Rule.Call_to { callee = rest; in_method = None }
  | Some i ->
      let callee = String.sub rest 0 i in
      let tail = strip (String.sub rest i (String.length rest - i)) in
      if starts_with "in " tail then
        Rule.Call_to { callee; in_method = Some (after "in " tail) }
      else Rule.Call_to { callee; in_method = None }

let parse_quoted ~line (s : string) : string =
  let s = strip s in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else raise (Parse_error (Fmt.str "expected a quoted string, got %S" s, line))

let finalize (p : partial) : Rule.t =
  let high_level = Option.value ~default:"(developer-authored rule)" p.p_because in
  match (p.p_target, p.p_condition, p.p_lock_scope) with
  | Some target, Some condition, None ->
      Rule.make ~rule_id:p.p_id
        ~description:
          (Fmt.str "no execution may reach [%s] unless %s"
             (Rule.target_spec_to_string target)
             (Smt.Formula.to_string condition))
        ~high_level ~origin:"developer-dsl"
        (Rule.State_guard { target; condition })
  | None, None, Some scope ->
      Rule.make ~rule_id:p.p_id
        ~description:(Rule.lock_scope_to_string scope)
        ~high_level ~origin:"developer-dsl"
        (Rule.Lock_discipline { scope })
  | None, Some _, None ->
      raise (Parse_error (Fmt.str "rule %s: 'require' without a 'when' target" p.p_id, p.p_line))
  | Some _, None, None ->
      raise (Parse_error (Fmt.str "rule %s: 'when' without a 'require' condition" p.p_id, p.p_line))
  | _, _, Some _ ->
      raise
        (Parse_error
           (Fmt.str "rule %s: 'forbid' cannot be combined with 'when'/'require'" p.p_id, p.p_line))
  | None, None, None ->
      raise (Parse_error (Fmt.str "rule %s: empty rule body" p.p_id, p.p_line))

(** Parse a DSL document into rules. *)
let parse (text : string) : Rule.t list =
  let lines = String.split_on_char '\n' text in
  let rules = ref [] in
  let current : partial option ref = ref None in
  let close () =
    match !current with
    | Some p ->
        rules := finalize p :: !rules;
        current := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = strip raw in
      if s = "" || starts_with "#" s || starts_with "//" s then ()
      else if starts_with "rule " s then begin
        close ();
        let rest = after "rule " s in
        let id =
          match String.index_opt rest ':' with
          | Some j -> strip (String.sub rest 0 j)
          | None -> raise (Parse_error ("expected ':' after rule name", line))
        in
        if id = "" then raise (Parse_error ("empty rule name", line));
        current :=
          Some
            {
              p_id = id;
              p_because = None;
              p_target = None;
              p_condition = None;
              p_lock_scope = None;
              p_line = line;
            }
      end
      else
        match !current with
        | None -> raise (Parse_error (Fmt.str "statement outside a rule block: %S" s, line))
        | Some p ->
            if starts_with "because " s then
              p.p_because <- Some (parse_quoted ~line (after "because " s))
            else if starts_with "when calling " s then
              p.p_target <- Some (parse_call_target (after "when calling " s))
            else if starts_with "when at " s then
              p.p_target <- Some (Rule.Stmt_text (parse_quoted ~line (after "when at " s)))
            else if starts_with "require " s then
              p.p_condition <- Some (parse_condition ~line (after "require " s))
            else if starts_with "forbid blocking under lock in " s then
              p.p_lock_scope <-
                Some (Rule.Lock_specific (after "forbid blocking under lock in " s))
            else if s = "forbid blocking under lock" then
              p.p_lock_scope <- Some Rule.Lock_blocking
            else if s = "forbid all calls under lock" then
              p.p_lock_scope <- Some Rule.Lock_all_calls
            else raise (Parse_error (Fmt.str "unrecognized directive: %S" s, line)))
    lines;
  close ();
  List.rev !rules

(** Render a rule back into DSL syntax (parse/print round-trips). *)
let print_rule (r : Rule.t) : string =
  let header = Fmt.str "rule %s:" r.Rule.rule_id in
  let because = Fmt.str "  because %S" r.Rule.high_level in
  match r.Rule.body with
  | Rule.State_guard { target; condition } ->
      let when_line =
        match target with
        | Rule.Call_to { callee; in_method = None } -> Fmt.str "  when calling %s" callee
        | Rule.Call_to { callee; in_method = Some m } ->
            Fmt.str "  when calling %s in %s" callee m
        | Rule.Stmt_text t -> Fmt.str "  when at %S" t
      in
      String.concat "\n"
        [ header; because; when_line; "  require " ^ Smt.Formula.to_string condition ]
  | Rule.Lock_discipline { scope } ->
      let forbid_line =
        match scope with
        | Rule.Lock_specific m -> "  forbid blocking under lock in " ^ m
        | Rule.Lock_blocking -> "  forbid blocking under lock"
        | Rule.Lock_all_calls -> "  forbid all calls under lock"
      in
      String.concat "\n" [ header; because; forbid_line ]

let print_rules (rs : Rule.t list) : string =
  String.concat "\n\n" (List.map print_rule rs)
