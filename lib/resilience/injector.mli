(** Global injection state: the armed {!Plan.t} and per-point call
    counters.  With no plan armed, {!draw} is one atomic load. *)

val arm : Plan.t -> unit

val disarm : unit -> unit

val active : unit -> Plan.t option

(** Rewind the call counters and injected count (keeps the plan), so
    the armed plan replays the same fault sequence. *)
val reset : unit -> unit

(** Faults injected since the last {!reset}. *)
val injected_count : unit -> int

(** The fault (if any) to inject at this call of [point].  Emits a
    {!Events.Fault_injected} event when one fires. *)
val draw : Fault.point -> Fault.kind option

(** Record a breaker trip at [point] and raise {!Fault.Injected}. *)
val raise_fault : Fault.point -> Fault.kind -> 'a
