lib/lisa/report.ml: Checker Fmt List Semantics Smt String
