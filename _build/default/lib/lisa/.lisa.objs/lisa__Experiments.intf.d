lib/lisa/experiments.mli:
