lib/minilang/loc.mli: Format
