(** Witness-replay triage: self-validating verdict tiers over checker
    findings (the Hitchhiker's-Guide second pass).

    For each violating trace the checker reports, triage synthesizes
    concrete inputs from the SMT model of [pc /\ !checker] (bounded
    case-split over unconstrained atoms), replays them through the real
    MiniJava interpreter under a fuel budget, and fuses the replay
    outcome with two consistency signals (does the rule contradict
    concretely-observed passing state? does it have any verified trace?)
    into a tier.  Tiers rank findings — triage never deletes a report —
    so disabling it leaves all downstream output byte-identical. *)

(** Verdict tiers, strongest first. *)
type tier =
  | Witnessed
      (** a concrete replay reproduces the violation, and the rule is
          consistent with observed passing behaviour *)
  | Consistent
      (** a model exists but replay was inconclusive or the budget ran
          out: plausible, unproven *)
  | Likely_fp
      (** replay refutes the finding, or the rule condemns states the
          system's own green tests produce and has no verified trace *)

val tier_to_string : tier -> string
(** ["witnessed"] / ["consistent"] / ["likely-fp"] — the wire spelling
    used by the serve protocol and reports. *)

val tier_of_string : string -> tier option

type config = {
  enabled : bool;
  replay_fuel : int;  (** interpreter fuel per replay attempt *)
  max_attempts : int;  (** witness valuations replayed per finding *)
  max_nodes : int;  (** case-split search nodes per finding *)
}

val default_config : config

type finding = {
  f_rule_id : string;
  f_method : string;
  f_entry : string;  (** driving test; [""] for static lock findings *)
  f_target_sid : int;
  f_tier : tier;
  f_reason : string;  (** deterministic evidence summary *)
}

type triaged = {
  t_report : Engine.Checker.rule_report;
  t_findings : finding list;
      (** one per violation trace and lock finding; [] when triage is
          disabled or the report is clean *)
}

(** {2 Witness synthesis (exposed for property tests)} *)

type hint = H_int | H_bool | H_str | H_obj

(** Bounded enumeration of concrete valuations satisfying the formula,
    pruned by three-valued partial evaluation and seeded by the SMT
    model.  Enumeration runs over [Smt.Formula.simplify f], and every
    returned valuation satisfies
    [Smt.Formula.eval valuation (simplify f) = Some true]; the flag is
    [true] iff the whole candidate space was explored within
    [max_nodes] / [max_attempts]. *)
val synthesize :
  ?model:(Smt.Formula.atom * bool) list ->
  ?hints:(string -> hint option) ->
  max_nodes:int ->
  max_attempts:int ->
  Smt.Formula.t ->
  (string * Smt.Formula.value) list list * bool

(** {2 Triage} *)

(** Triage one rule report against the program version it was checked
    on.  Emits a [triage.witness] span per finding and bumps the
    [triage.tier.*] metrics. *)
val triage_report :
  ?config:config -> Minilang.Ast.program -> Engine.Checker.rule_report ->
  triaged

(** Triage a batch and emit the [triage.tier.*] trace counter events. *)
val triage_reports :
  ?config:config ->
  Minilang.Ast.program ->
  Engine.Checker.rule_report list ->
  triaged list

(** The report-level tier: the best tier among the rule's findings
    ([None] for a clean report). *)
val rule_tier : triaged -> tier option

(** A rule blocks the gate iff at least one finding survived triage
    (Witnessed or Consistent). *)
val blocking : triaged -> bool

val has_blocking_findings : triaged list -> bool

(** Rule ids with findings, all of which triage ranked Likely-FP. *)
val demoted_ids : triaged list -> string list

(** (witnessed, consistent, likely-fp) finding counts. *)
val tier_counts : triaged list -> int * int * int

val finding_to_string : finding -> string
