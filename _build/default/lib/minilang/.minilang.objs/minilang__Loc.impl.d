lib/minilang/loc.ml: Fmt Int String
