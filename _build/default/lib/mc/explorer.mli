(** Bounded scenario model checker over MiniJava systems (the substrate
    behind the paper's §5 question on composing low-level semantics into
    high-level guarantees).

    A scenario provides an init function, a set of client operations
    (MiniJava functions taking the state object), and an invariant — the
    high-level property.  The explorer enumerates every operation sequence
    up to a depth bound and checks the invariant after each step.
    Operations that throw are guard rejections, not violations. *)

type config = {
  depth : int;  (** maximum operations per sequence *)
  fuel_per_run : int;  (** interpreter fuel for one full sequence *)
  max_sequences : int;  (** exploration budget *)
}

val default_config : config

type step = { op : string; rejected : bool }

type violation = { v_trace : step list; v_detail : string }

type stats = { sequences : int; transitions : int; rejections : int }

type outcome = Safe of stats | Unsafe of violation * stats | Engine_error of string

type scenario = {
  program : Minilang.Ast.program;
  init : string;  (** init function name; returns the state object *)
  ops : string list;  (** operation function names, each [op(st)] *)
  invariant : string;  (** invariant function name, [inv(st): bool] *)
}

(** Explore all operation sequences up to [config.depth], shortest first,
    and report the first invariant violation (with its minimal trace). *)
val explore : ?config:config -> scenario -> outcome

val step_to_string : step -> string

val violation_to_string : violation -> string

val outcome_to_string : outcome -> string
