(** Domain-based worker pool (OCaml 5, no external dependencies).

    [map ~jobs f items] applies [f] to every item and returns the
    results in input order.  With [jobs <= 1] it is a plain [Array.map]
    on the calling domain — bit-for-bit the serial semantics, which is
    what keeps tier-1 tests stable.  With [jobs > 1] it spawns up to
    [jobs] domains that drain a shared atomic index; because results land
    in their input slot, the output is identical for every pool width as
    long as [f] is deterministic per item (the checker's dynamic phase
    is: it shares no mutable state apart from the mutex-protected
    caches, whose hits return the same verdicts the misses compute).

    An exception in any worker is caught, the surviving workers finish
    their current items, and the first exception (by input index, so
    deterministically the same one) is re-raised on the caller. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let map ~(jobs : int) (f : 'a -> 'b) (items : 'a array) : 'b array =
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some (match f items.(i) with v -> Ok v | exception e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index below [n] was claimed *))
      results
  end

(** [map] over a list. *)
let map_list ~(jobs : int) (f : 'a -> 'b) (items : 'a list) : 'b list =
  Array.to_list (map ~jobs f (Array.of_list items))
