(** Low-level semantic rules: safety contracts [<P> s <>].

    The paper's running example (§3.1):
    {v <session.isClosing == false> createEphemeralNode <> v}

    Two rule families cover the studied regressions: state-guard contracts
    (a checker formula must hold whenever control reaches the target
    statement) and lock-discipline rules (no blocking operation while
    holding a monitor — the Figure 6 family). *)

(** How the target statement [s] of a contract is located in a program. *)
type target_spec =
  | Call_to of { callee : string; in_method : string option }
      (** any statement calling [callee]; optionally restricted to one
          qualified method — [None] generalizes across the code base *)
  | Stmt_text of string  (** canonical printed statement head must match *)

(** Scope of a lock-discipline rule (Figure 6's generalization ladder). *)
type lock_scope =
  | Lock_specific of string  (** one method's synchronized blocks only *)
  | Lock_blocking  (** no blocking operation under any lock *)
  | Lock_all_calls  (** no call at all under a lock (naive; false positives) *)

type body =
  | State_guard of { target : target_spec; condition : Smt.Formula.t }
  | Lock_discipline of { scope : lock_scope }

type t = {
  rule_id : string;  (** stable identifier, e.g. ["ZK-1208.g27"] *)
  description : string;  (** the low-level semantics in natural language *)
  high_level : string;  (** the system-level property it protects *)
  origin : string;  (** failure ticket the rule was learned from *)
  body : body;
}

val make :
  rule_id:string ->
  description:string ->
  high_level:string ->
  origin:string ->
  body ->
  t

val is_state_guard : t -> bool

val is_lock_rule : t -> bool

val condition : t -> Smt.Formula.t option

val target : t -> target_spec option

val target_spec_to_string : target_spec -> string

val lock_scope_to_string : lock_scope -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Abstract a rule to reflect system-level behaviour (Figure 6): drop the
    method restriction of a call target; widen a specific lock rule to all
    blocking operations.  Idempotent. *)
val generalize : t -> t

(** The naive broadening of a lock rule (for the E5 false-positive
    experiment); identity on state guards. *)
val broaden_naively : t -> t
