lib/analysis/callgraph.ml: Ast Buffer Builtins Fmt Hashtbl List Minilang
