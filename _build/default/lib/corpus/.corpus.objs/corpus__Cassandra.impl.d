lib/corpus/cassandra.ml: Case String
