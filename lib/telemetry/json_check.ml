(** A minimal recursive-descent JSON validator — enough to assert the
    trace exporter emits well-formed JSON without depending on a JSON
    library the tree doesn't already carry.  Validates structure only;
    it builds no document. *)

type state = { s : string; mutable pos : int }

exception Bad of string * int

let error st msg = raise (Bad (msg, st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected '%c', got '%c'" c c')
  | None -> error st (Printf.sprintf "expected '%c', got end of input" c)

let literal st word =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then
    st.pos <- st.pos + n
  else error st (Printf.sprintf "expected literal %s" word)

let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let string_body st =
  expect st '"';
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance st;
            loop ()
        | Some 'u' ->
            advance st;
            for _ = 1 to 4 do
              match peek st with
              | Some c when is_hex c -> advance st
              | _ -> error st "bad \\u escape"
            done;
            loop ()
        | _ -> error st "bad escape")
    | Some c when Char.code c < 0x20 -> error st "control char in string"
    | Some _ ->
        advance st;
        loop ()
  in
  loop ()

let number st =
  let digits () =
    let started = ref false in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
          started := true;
          advance st;
          go ()
      | _ -> if not !started then error st "expected digit"
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  digits ();
  (match peek st with
  | Some '.' ->
      advance st;
      digits ()
  | _ -> ());
  match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      digits ()
  | _ -> ()

let rec value st =
  skip_ws st;
  match peek st with
  | Some '{' -> obj st
  | Some '[' -> arr st
  | Some '"' -> string_body st
  | Some 't' -> literal st "true"
  | Some 'f' -> literal st "false"
  | Some 'n' -> literal st "null"
  | Some ('-' | '0' .. '9') -> number st
  | Some c -> error st (Printf.sprintf "unexpected '%c'" c)
  | None -> error st "unexpected end of input"

and obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' -> advance st
  | _ ->
      let rec members () =
        skip_ws st;
        string_body st;
        skip_ws st;
        expect st ':';
        value st;
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            members ()
        | Some '}' -> advance st
        | _ -> error st "expected ',' or '}'"
      in
      members ()

and arr st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' -> advance st
  | _ ->
      let rec elements () =
        value st;
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            elements ()
        | Some ']' -> advance st
        | _ -> error st "expected ',' or ']'"
      in
      elements ()

let validate s =
  let st = { s; pos = 0 } in
  match
    value st;
    skip_ws st;
    peek st
  with
  | None -> Ok ()
  | Some c -> Error (Printf.sprintf "trailing garbage '%c' at %d" c st.pos)
  | exception Bad (msg, pos) -> Error (Printf.sprintf "%s at %d" msg pos)
