lib/lisa/experiments.ml: Buffer Checker Corpus Diffing Fix Fmt List Minilang Oracle Pipeline Semantics Smt String
