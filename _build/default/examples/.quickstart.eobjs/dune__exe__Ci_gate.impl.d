examples/ci_gate.ml: Array Corpus Fmt Lisa List Sys
