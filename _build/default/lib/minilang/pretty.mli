(** Canonical pretty-printer for MiniJava.

    Parsing the printer's output yields an AST equal (up to locations and
    statement ids) to the input; printing is a fixpoint after one cycle.
    The one-line statement form is the textual key used to match a
    semantic rule's target statement against code. *)

val expr_to_string : Ast.expr -> string

val lvalue_to_string : Ast.lvalue -> string

(** One-line rendering of a statement head; nested blocks elided as
    ["{ ... }"]. *)
val stmt_head_to_string : Ast.stmt -> string

(** Multi-line rendering of a full statement. *)
val stmt_to_string : Ast.stmt -> string

val method_to_string : Ast.method_decl -> string

(** Render a whole program back to canonical concrete syntax. *)
val program_to_string : Ast.program -> string
