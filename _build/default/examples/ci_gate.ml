(* The vision of the paper's introduction: "every failure, once fixed,
   automatically becomes an executable contract that shields the system
   from ever repeating the same mistake."

   This example replays the full version history of every corpus case
   through the gated CI pipeline (tests + accumulated rulebook) and shows
   each regression being BLOCKED at commit time instead of shipping.

   Run with: dune exec examples/ci_gate.exe [case-id] *)

let () =
  let cases =
    match Array.to_list Sys.argv with
    | _ :: case_id :: _ -> (
        match Corpus.Registry.find_case case_id with
        | Some c -> [ c ]
        | None ->
            Fmt.epr "unknown case %s@." case_id;
            exit 1)
    | _ -> Corpus.Registry.all_cases
  in
  let shipped_regressions = ref 0 in
  let blocked_regressions = ref 0 in
  List.iter
    (fun (c : Corpus.Case.t) ->
      let run = Lisa.Ci.replay c in
      print_endline (Lisa.Ci.run_to_string run);
      print_newline ();
      List.iter
        (fun stage ->
          if List.mem stage (Lisa.Ci.blocked_stages run) then incr blocked_regressions
          else incr shipped_regressions)
        c.Corpus.Case.regression_stages)
    cases;
  Fmt.pr "regressed commits blocked before release: %d@." !blocked_regressions;
  Fmt.pr "regressed commits that would have shipped: %d@." !shipped_regressions;
  if !shipped_regressions = 0 then
    Fmt.pr "@.every \"once bitten\" left a contract; none bit twice.@."
