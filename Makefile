.PHONY: all build test check bench bench-smoke chaos trace serve-smoke triage scale scale-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Every span/counter name the trace export must mention for the engine
# workload (tools/trace_check validates the JSON and greps for these;
# counter:NAME additionally requires the name on a "ph":"C" event).
TRACE_SPANS = engine.enforce engine.incremental engine.prepare \
  engine.execute engine.job checker.prepare checker.execute smt.solve \
  concolic.run oracle.infer engine.report_cache engine.smt_cache \
  counter:smt.assume.push counter:smt.assume.pop counter:smt.propagations \
  counter:smt.learned counter:smt.trie.nodes counter:smt.trie.shared \
  counter:core.shard.contention counter:smt.memo.local_hits \
  counter:smt.learned.batched counter:smt.fastpath.interval \
  counter:smt.fastpath.bcp counter:smt.fastpath.subsumed \
  counter:smt.fastpath.saved counter:smt.memo.local_evict

# Names the serve-daemon trace must mention (tools/serve_smoke.sh
# passes these to trace_check after driving the daemon).
SERVE_TRACE_SPANS = serve.request counter:serve.queue

# Names the witness-replay triage trace must mention: the per-finding
# replay span and the tier counter series.
TRIAGE_TRACE_SPANS = triage.witness counter:triage.tier.witnessed \
  counter:triage.tier.consistent counter:triage.tier.likely_fp

# Names the scale trace must mention: the corpus-generator span and its
# case counter (the scan/engine names are covered by TRACE_SPANS).
SCALE_TRACE_SPANS = corpus.synth counter:corpus.synth.cases

# The tier-1 gate plus the engine acceptance smokes: build, full test
# suite, the serial/parallel/incremental equivalence checks (with a
# trace-export smoke), the chaos fault-injection invariants — both on
# the zookeeper slice of the E11 workload — the incremental-solver
# smoke (verdict byte-identity plus the never-loses wall-time gate,
# and the pre-solver fast-path leg asserting searches are actually
# retired — saved > 0 with >= 25% fewer full solves — on byte-identical
# verdicts),
# the witness-replay triage smoke (zero-loss, injected-FP demotion,
# determinism, triage.* trace names), and the serve-daemon smoke
# (overload shed, warm-restart byte identity, corrupted-snapshot cold
# fallback, serve.* trace names), and the synthetic-corpus scale smoke
# (generator determinism, zero-loss detection, corpus.synth trace names).
check:
	dune build && dune runtest && dune exec bench/main.exe -- --experiment engine --smoke --trace trace-smoke.json && dune exec tools/trace_check.exe -- trace-smoke.json $(TRACE_SPANS) && dune exec bench/main.exe -- --experiment chaos --smoke && dune exec bench/main.exe -- --experiment solver --smoke && dune exec bench/main.exe -- --experiment triage --smoke --trace trace-triage-smoke.json && dune exec tools/trace_check.exe -- trace-triage-smoke.json $(TRIAGE_TRACE_SPANS) && $(MAKE) bench-smoke && $(MAKE) serve-smoke && $(MAKE) scale-smoke

# Serve-daemon acceptance: drive `lisa serve` over stdin JSONL with a
# queue-depth-2 overload (one request must shed), restart warm from
# snapshots asserting byte-identical verdicts, corrupt a snapshot and
# assert the cold fallback, and validate $(SERVE_TRACE_SPANS) in the
# recorded trace.
serve-smoke:
	dune build bin/lisa_cli.exe tools/trace_check.exe && sh tools/serve_smoke.sh

# Fast hash-consing benchmark: intern throughput, the id-keyed vs
# string-keyed memo lookup comparison, and the jobs=1 vs jobs=N
# scaling columns over the sharded tables (cross-domain physical
# identity always gated; the >=4x-at-8-domains throughput gate only
# fires on non-smoke runs with >= 8 cores).  Writes BENCH_formula.json.
bench-smoke:
	dune exec bench/main.exe -- --experiment formula --smoke

# Record the full E11 engine workload through the telemetry tracer,
# validate the Chrome-trace JSON, and check every pipeline stage shows
# up.  Load trace.json in chrome://tracing or https://ui.perfetto.dev.
trace:
	dune exec bench/main.exe -- --experiment engine --trace trace.json && dune exec tools/trace_check.exe -- trace.json $(TRACE_SPANS)

# Synthetic-corpus scaling acceptance, smoke version: scales 1x/2x,
# every gate on (generator determinism, Case.validate, zero-loss planted
# detection, jobs=2/4/8 byte identity to the jobs=1 reference, fast-path
# off/on byte identity with >= 25% fewer full solves at 1x, CI
# regression gating), with the corpus.synth span/counter validated in
# the recorded trace.
scale-smoke:
	dune exec bench/main.exe -- --experiment scale --smoke --trace trace-scale-smoke.json && dune exec tools/trace_check.exe -- trace-scale-smoke.json $(SCALE_TRACE_SPANS)

# Full version: scales 1x/10x/100x (>= 160 cases at 10x), CI leg capped
# at 160 histories.  Writes BENCH_scale.json with throughput, cache-hit
# rates and peak heap per scale point.
scale:
	dune exec bench/main.exe -- --experiment scale

bench:
	dune exec bench/main.exe

# Full chaos suite: all four systems, seeds 1-3, plus the jobs=4 leg
# and the post-chaos byte-identical re-run check.
chaos:
	dune exec bench/main.exe -- --experiment chaos

# Witness-replay triage acceptance, full version: zero-loss on the
# clean corpus, >= 70% injected-FP demotion under a fully hallucinating
# oracle across three noise seeds, disabled-triage byte-identity, and
# the determinism gates, with the triage.* trace names validated.
# Writes BENCH_triage.json.
triage:
	dune exec bench/main.exe -- --experiment triage --trace trace-triage.json && dune exec tools/trace_check.exe -- trace-triage.json $(TRIAGE_TRACE_SPANS)

clean:
	dune clean
	rm -rf .lisa-cache .lisa-cache-*
