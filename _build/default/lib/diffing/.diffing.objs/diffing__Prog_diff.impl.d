lib/diffing/prog_diff.ml: Ast Fmt List Minilang Pretty String Textutil
