lib/lisa/report.mli: Checker
