(** Resilience event bus.

    Every observable recovery action — an injected fault, a job retry,
    a quarantine, a circuit breaker opening or closing, a component
    degrading its answer — is emitted here, so failures are logged
    rather than silently folded into counters.

    The default sink routes events through the [Telemetry.Event] scope
    "resilience" (warnings for recoveries, errors for quarantines and
    open breakers), which formats lazily, logs through the scope's
    {!Logs} source, and records a trace instant when tracing is on.  A
    host library can install its own sink — [Lisa.Log] re-routes events
    through the "lisa" scope so one [-v] flag covers the whole
    pipeline. *)

type severity = Warn | Error

type t =
  | Fault_injected of { point : Fault.point; kind : Fault.kind; seq : int }
  | Job_retry of { job : string; attempt : int; backoff_ms : int; reason : string }
  | Job_quarantined of { job : string; attempts : int; reason : string }
  | Component_degraded of { component : string; reason : string }
  | Breaker_opened of { point : Fault.point; consecutive : int }
  | Breaker_closed of { point : Fault.point }

let severity = function
  | Fault_injected _ | Job_retry _ | Component_degraded _ | Breaker_closed _ -> Warn
  | Job_quarantined _ | Breaker_opened _ -> Error

let to_string = function
  | Fault_injected { point; kind; seq } ->
      Fmt.str "fault injected: %s %s (call #%d)" (Fault.point_to_string point)
        (Fault.kind_to_string kind) seq
  | Job_retry { job; attempt; backoff_ms; reason } ->
      Fmt.str "retrying job %s (attempt %d, backoff %dms): %s" job attempt backoff_ms
        reason
  | Job_quarantined { job; attempts; reason } ->
      Fmt.str "quarantined job %s after %d attempt(s): %s" job attempts reason
  | Component_degraded { component; reason } ->
      Fmt.str "%s degraded: %s" component reason
  | Breaker_opened { point; consecutive } ->
      Fmt.str "circuit breaker OPEN for %s after %d consecutive trip(s)"
        (Fault.point_to_string point) consecutive
  | Breaker_closed { point } ->
      Fmt.str "circuit breaker closed for %s" (Fault.point_to_string point)

let scope = Telemetry.Event.scope "resilience"

let src = Telemetry.Event.logs_src scope

(* Route through the telemetry funnel: [to_string] is only forced when
   the event is wanted (level, tracer, or test sink), and a tracing run
   records the event as a trace instant too. *)
let default_sink (e : t) : unit =
  let sev =
    match severity e with
    | Warn -> Telemetry.Event.Warn
    | Error -> Telemetry.Event.Error
  in
  Telemetry.Event.emit scope sev (fun () -> to_string e)

let sink : (t -> unit) Atomic.t = Atomic.make default_sink

let set_sink f = Atomic.set sink f

let reset_sink () = Atomic.set sink default_sink

let emitted = Atomic.make 0

let emit (e : t) : unit =
  Atomic.incr emitted;
  (Atomic.get sink) e

let emitted_count () = Atomic.get emitted
