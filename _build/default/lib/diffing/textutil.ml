(** Small text helpers shared by the diffing and oracle layers. *)

(** [contains_sub haystack needle] is true iff [needle] occurs in
    [haystack] as a contiguous substring. *)
let contains_sub (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else go (i + 1)
    in
    go 0

(** Lower-case ASCII copy of a string. *)
let lowercase = String.lowercase_ascii

(** Tokenize a text into lower-case word/identifier tokens, splitting
    camelCase and snake_case identifiers into their components.  This is
    the shared tokenizer for TF-IDF embeddings and keyword extraction. *)
let word_tokens (text : string) : string list =
  let is_alnum c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') in
  let n = String.length text in
  let raw = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then (
      raw := Buffer.contents buf :: !raw;
      Buffer.clear buf)
  in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if is_alnum c then Buffer.add_char buf c else flush ()
  done;
  flush ();
  (* split camelCase: "createEphemeralNode" -> create, ephemeral, node *)
  let split_camel (w : string) : string list =
    let parts = ref [] in
    let buf = Buffer.create 8 in
    String.iter
      (fun c ->
        if c >= 'A' && c <= 'Z' && Buffer.length buf > 0 then (
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf);
        Buffer.add_char buf (Char.lowercase_ascii c))
      w;
    if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
    List.rev !parts
  in
  List.concat_map split_camel (List.rev !raw)
  |> List.filter (fun w -> String.length w > 1)
