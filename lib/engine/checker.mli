(** Rule enforcement (paper §3.2), split into a static phase
    ({!prepare}: target resolution, execution trees, test selection) and
    a dynamic phase ({!execute}: concolic exploration + SMT judging).
    The engine ({!Scheduler}) fingerprints the static phase's outputs to
    key its report cache and runs the dynamic phase on its worker pool;
    [check_rule] composes the two and behaves like the historic
    single-shot checker. *)

open Minilang

type test_selection =
  | Rag of int  (** top-k similarity selection (the paper's approach) *)
  | All_tests
  | Pseudo_random of { seed : int; k : int }

type check_method = Complement | Direct

type config = {
  selection : test_selection;
  prune : bool;
  method_ : check_method;
  fuel : int;
  trie : bool;
      (** judge traces through the path-condition trie ({!Smt.Pctrie})
          with an incremental {!Smt.Solver.context} instead of solving
          each trace independently.  Result-preserving (reports are
          byte-identical either way), so excluded from {!config_tag}:
          both modes share cache entries.  On by default. *)
}

val default_config : config

(** Stable rendering of the result-influencing knobs; part of the
    engine's cache key. *)
val config_tag : config -> string

(** One judged trace (a target arrival). *)
type trace_verdict = {
  tv_target_sid : int;
  tv_method : string;
  tv_entry : string;  (** driving test *)
  tv_pc : Smt.Formula.t;
  tv_result : Smt.Solver.trace_check;
  tv_state : (string * Smt.Formula.value) list;
      (** concrete valuation of the checker condition's variables observed
          at the target arrival (references as opaque markers) — the
          witness-replay triage's concrete evidence *)
}

type lock_finding = {
  lf_method : string;
  lf_op : string;
  lf_static : bool;  (** found statically (vs. observed dynamically) *)
  lf_sid : int;
}

type rule_report = {
  rep_rule : Semantics.Rule.t;
  rep_targets : int;  (** resolved target statements *)
  rep_static_paths : int;  (** paths in the execution trees *)
  rep_tests_run : string list;
  rep_traces : trace_verdict list;
  rep_violations : trace_verdict list;  (** subset of traces *)
  rep_verified : trace_verdict list;
  rep_uncovered_paths : string list;  (** rendered exec paths never observed *)
  rep_lock_findings : lock_finding list;
  rep_sanity_ok : bool;
      (** at least one verified trace exists — §3.2's "fixed paths act as
          our sanity check" requirement (state-guard rules only) *)
  rep_branches_total : int;
  rep_branches_recorded : int;
  rep_undecided : trace_verdict list;
      (** subset of traces the solver could not judge (node budget hit,
          circuit open, injected budget fault) *)
  rep_degraded : string list;
      (** degradation reasons: why this report may under-approximate the
          truth.  Empty on a healthy run. *)
}

val has_violations : rule_report -> bool

(** Some of this report's evidence was lost (budgets, breakers,
    quarantine): a pass with an asterisk, never a clean pass. *)
val is_degraded : rule_report -> bool

(** Placeholder report for a rule whose job exhausted its retries: no
    evidence either way, the reason on record, [rep_sanity_ok = false]. *)
val quarantined_report : Semantics.Rule.t -> reason:string -> rule_report

(** {1 The two-phase API used by the engine} *)

(** Output of the static phase: the dynamic phase's full input set, which
    is also what the engine's cache key must cover. *)
type prepared = {
  prep_rule : Semantics.Rule.t;
  prep_tests : string list;  (** concrete inputs the dynamic phase runs *)
  prep_kind : prep_kind;
}

and prep_kind =
  | Prep_guard of {
      pg_condition : Smt.Formula.t;
      pg_targets : (string * Ast.stmt) list;
          (** enclosing qualified method, resolved target statement *)
      pg_trees : Analysis.Paths.exec_tree list;
    }
  | Prep_lock of { pl_scope : Semantics.Rule.lock_scope }

val prepared_static_paths : prepared -> Analysis.Paths.exec_path list

(** Qualified names of the methods holding a resolved target statement. *)
val prepared_target_methods : prepared -> string list

(** Static phase.  [?graph] shares a prebuilt call graph across the rules
    of one program version. *)
val prepare :
  ?config:config ->
  ?graph:Analysis.Callgraph.t ->
  Ast.program ->
  Semantics.Rule.t ->
  prepared

(** Dynamic phase: the unit of work the engine parallelizes and caches. *)
val execute : ?config:config -> Ast.program -> prepared -> rule_report

(** Judge concolic hits against a checker condition, in input order —
    through the trie walk when [config.trie], per-trace otherwise.  Both
    modes give byte-identical verdicts and models; exposed so tests and
    benchmarks can compare them directly. *)
val judge_hits :
  config ->
  condition:Smt.Formula.t ->
  Symexec.Concolic.hit list ->
  trace_verdict list

(** The dynamic phase's concolic evidence for a state-guard rule: its
    checker condition and every target hit, in execution order ([None]
    for lock rules).  Benchmarks use this to time trace judging in
    isolation from concolic exploration. *)
val guard_evidence :
  ?config:config ->
  Ast.program ->
  prepared ->
  (Smt.Formula.t * Symexec.Concolic.hit list) option

(** {1 Single-shot entry points (historic behaviour)} *)

(** Check one rule against a program version. *)
val check_rule :
  ?config:config -> Ast.program -> Semantics.Rule.t -> rule_report

(** Check a whole rulebook (one shared call graph). *)
val check_book :
  ?config:config -> Ast.program -> Semantics.Rulebook.t -> rule_report list

val report_summary : rule_report -> string
