(** The incident corpus as a first-class value: a registry is cases +
    systems + whole-system version assembly + study metadata, assembled
    from per-system providers.  The hand-written 16-case / 34-bug corpus
    is {!builtin}; the pre-refactor flat module API remains below as
    thin shims over it. *)

type meta = {
  m_changes_per_day_gcp : int;
  m_avg_test_files : int;
  m_ephemeral_bug_histogram : (int * int) list;
}

type provider = { p_system : string; p_cases : Case.t list }

type t = {
  name : string;
  systems : string list;
  cases : Case.t list;
  max_version : int;
  scan_versions : int list;
  meta : meta;
}

(** The survey constants the paper quotes (used by [builtin]). *)
val paper_meta : meta

val provider : system:string -> Case.t list -> provider

(** Assemble a registry from per-system providers.  [max_version]
    defaults to the largest [n_stages - 1] over all cases;
    [scan_versions] defaults to [1; 2; 3; max_version] (deduplicated);
    [meta] defaults to {!paper_meta}. *)
val make :
  ?max_version:int ->
  ?scan_versions:int list ->
  ?meta:meta ->
  name:string ->
  provider list ->
  t

(** {1 Registry-parametric accessors} *)

val cases_of : t -> string -> Case.t list

val find : t -> string -> Case.t option

val case_count : t -> int

val bug_count : t -> int

val old_semantics_count : t -> int

(** Share of bugs violating semantics that predate the first stable
    release (the paper quotes 68% for the builtin population). *)
val old_share : t -> float

(** Version [v] puts a case at stage [min v latest_stage]. *)
val stage_at_version : Case.t -> int -> int

val source_of : t -> string -> version:int -> string

val program_of : t -> string -> version:int -> Minilang.Ast.program

(** Human-readable commit log of a system's history. *)
val history_of : t -> string -> (int * string) list

val ephemeral_total : t -> int

(** {1 The builtin registry} — the hand-written §2.1 study population:
    16 regression cases, 34 bugs, four subject systems, scan versions
    [1;2;3;5] with the two §4 unknown bugs present at v5. *)

val builtin : t

(** {1 Legacy flat API} — thin shims over {!builtin}, byte-identical to
    the pre-refactor module output. *)

val all_cases : Case.t list

val systems : string list

val cases_of_system : string -> Case.t list

val find_case : string -> Case.t option

val n_cases : int

val n_bugs : int

val n_bugs_violating_old_semantics : int

val max_version : int

val system_source : string -> version:int -> string

val system_program : string -> version:int -> Minilang.Ast.program

val commit_history : string -> (int * string) list

val changes_per_day_gcp : int

val avg_test_files : int

val ephemeral_bug_histogram : (int * int) list

val ephemeral_bug_total : int

val old_semantics_share : unit -> float
