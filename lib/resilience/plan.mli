(** Seeded fault plans: a pure, reproducible description of which
    faults fire at which calls.  [decide plan point n] depends only on
    (seed, point, n), so chaos runs replay exactly. *)

type t = {
  seed : int;
  rate : float;  (** per-call injection probability, clamped to [0, 1] *)
  points : Fault.point list;
  kinds : Fault.kind list;
}

val make :
  ?points:Fault.point list ->
  ?kinds:Fault.kind list ->
  seed:int ->
  rate:float ->
  unit ->
  t

(** The fault (if any) injected at the [n]-th call of [point].  Pure. *)
val decide : t -> Fault.point -> int -> Fault.kind option

val to_string : t -> string
