test/test_diffing.ml: Alcotest Astring_contains Diffing Line_diff List Minilang Prog_diff QCheck QCheck_alcotest String Textutil
