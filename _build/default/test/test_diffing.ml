(* Tests for the line diff / unified patch / structural program diff. *)

open Diffing

let text_a = "alpha\nbravo\ncharlie\ndelta\necho"

let text_b = "alpha\nbravo-modified\ncharlie\ndelta\nfoxtrot\necho"

(* ------------------------------------------------------------------ *)
(* Line diff                                                           *)
(* ------------------------------------------------------------------ *)

let test_identity () =
  let edits = Line_diff.diff text_a text_a in
  Alcotest.(check bool) "identity diff" true (Line_diff.is_identity edits)

let test_adds_and_dels () =
  let edits = Line_diff.diff text_a text_b in
  let adds, dels = Line_diff.stats edits in
  Alcotest.(check (pair int int)) "stats" (2, 1) (adds, dels);
  Alcotest.(check (list string))
    "added lines" [ "bravo-modified"; "foxtrot" ] (Line_diff.added_lines edits);
  Alcotest.(check (list string)) "deleted lines" [ "bravo" ] (Line_diff.deleted_lines edits)

let test_apply_reconstructs () =
  let edits = Line_diff.diff text_a text_b in
  Alcotest.(check string) "apply yields new text" text_b (Line_diff.apply text_a edits)

let test_apply_rejects_mismatch () =
  let edits = Line_diff.diff text_a text_b in
  match Line_diff.apply "completely\ndifferent" edits with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_unified_format () =
  let edits = Line_diff.diff text_a text_b in
  let u = Line_diff.to_unified ~old_label:"a/f" ~new_label:"b/f" edits in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true (Astring_contains.contains u frag))
    [ "--- a/f"; "+++ b/f"; "@@ -"; "-bravo"; "+bravo-modified"; "+foxtrot"; " charlie" ]

let test_hunks_grouping () =
  (* two changes far apart produce two hunks with default context *)
  let old_text = String.concat "\n" (List.init 30 (fun i -> "line" ^ string_of_int i)) in
  let new_text =
    String.concat "\n"
      (List.init 30 (fun i ->
           if i = 2 then "LINE2" else if i = 25 then "LINE25" else "line" ^ string_of_int i))
  in
  let hunks = Line_diff.hunks (Line_diff.diff old_text new_text) in
  Alcotest.(check int) "two hunks" 2 (List.length hunks)

let test_empty_texts () =
  Alcotest.(check bool) "empty vs empty" true (Line_diff.is_identity (Line_diff.diff "" ""));
  let edits = Line_diff.diff "" "one\ntwo" in
  Alcotest.(check (pair int int)) "pure addition" (2, 0) (Line_diff.stats edits)

(* property: apply (diff a b) a = b *)
let gen_text =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      map (String.concat "\n")
        (list_size (int_bound 12) (oneofl [ "a"; "b"; "c"; "dd"; "ee"; "" ])))

let prop_diff_apply_roundtrip =
  QCheck.Test.make ~count:300 ~name:"apply (diff a b) a = b"
    (QCheck.pair gen_text gen_text) (fun (a, b) ->
      String.equal (Line_diff.apply a (Line_diff.diff a b)) b)

(* ------------------------------------------------------------------ *)
(* Structural program diff                                             *)
(* ------------------------------------------------------------------ *)

let old_src =
  {|
class S {
  field closing: bool = false;
  method isClosing(): bool { return this.closing; }
}
class P {
  method act(s: S) {
    if (s == null) {
      throw "gone";
    }
    doWork(s);
  }
}
method doWork(s: S) { }
|}

let new_src =
  {|
class S {
  field closing: bool = false;
  method isClosing(): bool { return this.closing; }
}
class P {
  method act(s: S) {
    if (s == null || s.isClosing()) {
      throw "gone";
    }
    doWork(s);
  }
  method actQuick(s: S) {
    doWork(s);
  }
}
method doWork(s: S) { }
|}

let test_prog_diff_added_guard () =
  let d =
    Prog_diff.compare_programs (Minilang.Parser.program old_src)
      (Minilang.Parser.program new_src)
  in
  Alcotest.(check (list string)) "added method" [ "P.actQuick" ] d.Prog_diff.added_methods;
  Alcotest.(check (list string)) "no removed methods" [] d.Prog_diff.removed_methods;
  let guards = Prog_diff.all_added_guards d in
  Alcotest.(check int) "one added guard" 1 (List.length guards);
  let g = List.hd guards in
  Alcotest.(check string) "guard method" "P.act" g.Prog_diff.g_method;
  Alcotest.(check string)
    "guard condition" "s == null || s.isClosing()"
    (Minilang.Pretty.expr_to_string g.Prog_diff.g_cond);
  Alcotest.(check bool) "early exit" true (g.Prog_diff.g_kind = Prog_diff.Early_exit);
  Alcotest.(check int) "one protected stmt" 1 (List.length g.Prog_diff.g_protected)

let test_prog_diff_wrapper_guard () =
  let old_p = Minilang.Parser.program "method f(x: int) { work(x); } method work(x: int) { }" in
  let new_p =
    Minilang.Parser.program
      "method f(x: int) { if (x > 0) { work(x); } } method work(x: int) { }"
  in
  let guards = Prog_diff.all_added_guards (Prog_diff.compare_programs old_p new_p) in
  Alcotest.(check int) "one guard" 1 (List.length guards);
  Alcotest.(check bool) "wrapper kind" true
    ((List.hd guards).Prog_diff.g_kind = Prog_diff.Wrapper)

let test_prog_diff_continue_guard_is_early_exit () =
  let old_p =
    Minilang.Parser.program
      "method f(l: list) { var i: int = 0; while (i < listSize(l)) { work(i); i = i + 1; } } method work(x: int) { }"
  in
  let new_p =
    Minilang.Parser.program
      "method f(l: list) { var i: int = 0; while (i < listSize(l)) { if (i == 3) { i = i + 1; continue; } work(i); i = i + 1; } } method work(x: int) { }"
  in
  let guards = Prog_diff.all_added_guards (Prog_diff.compare_programs old_p new_p) in
  Alcotest.(check int) "one guard" 1 (List.length guards);
  let g = List.hd guards in
  Alcotest.(check bool) "continue-guard is early-exit" true
    (g.Prog_diff.g_kind = Prog_diff.Early_exit);
  Alcotest.(check bool) "protects the work call" true
    (List.exists
       (fun st -> List.mem "work" (Minilang.Ast.callees_of_stmt st))
       g.Prog_diff.g_protected)

let test_prog_diff_no_change () =
  let p = Minilang.Parser.program old_src in
  let d = Prog_diff.compare_programs p (Minilang.Parser.program old_src) in
  Alcotest.(check int) "no changed methods" 0 (List.length d.Prog_diff.changed_methods)

let test_textutil_tokens () =
  Alcotest.(check (list string))
    "camelCase split"
    [ "create"; "ephemeral"; "node"; "on"; "closing"; "session" ]
    (Textutil.word_tokens "createEphemeralNode on_closing  session!");
  Alcotest.(check bool) "contains_sub" true (Textutil.contains_sub "hello world" "lo wo");
  Alcotest.(check bool) "not contains" false (Textutil.contains_sub "hello" "xyz")

let suite =
  [
    ( "diffing.line",
      [
        Alcotest.test_case "identity" `Quick test_identity;
        Alcotest.test_case "adds and dels" `Quick test_adds_and_dels;
        Alcotest.test_case "apply reconstructs" `Quick test_apply_reconstructs;
        Alcotest.test_case "apply rejects mismatch" `Quick test_apply_rejects_mismatch;
        Alcotest.test_case "unified format" `Quick test_unified_format;
        Alcotest.test_case "hunk grouping" `Quick test_hunks_grouping;
        Alcotest.test_case "empty texts" `Quick test_empty_texts;
        QCheck_alcotest.to_alcotest prop_diff_apply_roundtrip;
      ] );
    ( "diffing.structural",
      [
        Alcotest.test_case "extended guard detected" `Quick test_prog_diff_added_guard;
        Alcotest.test_case "wrapper guard" `Quick test_prog_diff_wrapper_guard;
        Alcotest.test_case "continue-guard early exit" `Quick
          test_prog_diff_continue_guard_is_early_exit;
        Alcotest.test_case "no change" `Quick test_prog_diff_no_change;
        Alcotest.test_case "text utilities" `Quick test_textutil_tokens;
      ] );
  ]
