(** Rule enforcement: assert a low-level semantic over a program version
    (the §3.2 machinery end to end: targets → execution trees → RAG test
    selection → concolic execution → SMT complement check → coverage). *)

type test_selection =
  | Rag of int  (** top-k similarity selection (the paper's approach) *)
  | All_tests
  | Pseudo_random of { seed : int; k : int }  (** ablation baseline *)

type check_method = Complement | Direct

type config = {
  selection : test_selection;
  prune : bool;  (** relevant-variable branch pruning *)
  method_ : check_method;
  fuel : int;
}

val default_config : config

(** One judged trace (a target arrival). *)
type trace_verdict = {
  tv_target_sid : int;
  tv_method : string;
  tv_entry : string;  (** driving test *)
  tv_pc : Smt.Formula.t;
  tv_result : Smt.Solver.trace_check;
}

type lock_finding = {
  lf_method : string;
  lf_op : string;
  lf_static : bool;  (** found statically (vs. observed dynamically) *)
  lf_sid : int;
}

type rule_report = {
  rep_rule : Semantics.Rule.t;
  rep_targets : int;  (** resolved target statements *)
  rep_static_paths : int;  (** paths in the execution trees *)
  rep_tests_run : string list;
  rep_traces : trace_verdict list;
  rep_violations : trace_verdict list;  (** subset of traces *)
  rep_verified : trace_verdict list;
  rep_uncovered_paths : string list;
      (** execution paths never observed: insufficient coverage or missed
          test selection; "developers should provide the final verdict" *)
  rep_lock_findings : lock_finding list;
  rep_sanity_ok : bool;
      (** at least one verified trace — the "fixed paths act as our sanity
          check" requirement (state-guard rules) *)
  rep_branches_total : int;
  rep_branches_recorded : int;
}

val has_violations : rule_report -> bool

(** Check one rule against a program version. *)
val check_rule : ?config:config -> Minilang.Ast.program -> Semantics.Rule.t -> rule_report

(** Check a whole rulebook. *)
val check_book :
  ?config:config -> Minilang.Ast.program -> Semantics.Rulebook.t -> rule_report list

val report_summary : rule_report -> string
