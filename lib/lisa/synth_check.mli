(** Pipeline-backed verdict oracle for generated corpus cases — the
    [fails] predicate that turns {!Corpus.Synth} into a whole-pipeline
    fuzzer (see [Synth.minimize]). *)

(** [Some reason] unless the original ticket yields an accepted rule,
    stage 1 is clean, stage 2 carries a finding, and stage 3 is clean. *)
val planted : ?config:Pipeline.config -> Corpus.Case.t -> string option

(** {!Corpus.Synth.validate_failure} plus {!planted}. *)
val full : ?config:Pipeline.config -> Corpus.Case.t -> string option
