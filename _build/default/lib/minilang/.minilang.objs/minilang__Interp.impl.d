lib/minilang/interp.ml: Ast Buffer Builtins Fmt Hashtbl List Loc Pretty String Value
