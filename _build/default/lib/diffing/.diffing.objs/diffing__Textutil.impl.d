lib/diffing/textutil.ml: Buffer Char List String
