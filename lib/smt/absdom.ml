(* Sound abstract pre-solver over interned formulas.

   Derives per-variable facts (integer interval, pinned constant,
   forbidden constants — which subsumes null/not-null) from the
   formula's top-level literal conjuncts, then evaluates the whole
   formula in Kleene three-valued logic under those facts.  Everything
   here mirrors a rule the DPLL(T) theory checker (theory.ml) enforces,
   so a definite answer is always the answer the full solver would
   reach:

   - a Conflict during derivation means the conjunct literals alone are
     theory-inconsistent (two distinct pinned constants, a pin inside
     the forbidden set, an empty interval, an ill-sorted order literal,
     a boolean excluded from both truth values, x != x / x < x);
   - an atom evaluates to [Some true] only when no theory-consistent
     extension of the conjunct facts can decide it false (and dually
     for [Some false]).  Kleene And/Or/Not preserve those one-sided
     bounds, so the formula evaluating to [Some false] proves that no
     consistent assignment satisfies the boolean skeleton: Unsat.

   Definite Sat is only ever claimed from a concrete witness: an
   environment built from the facts and confirmed by [Formula.eval].
   The hot path ([refute]) is memoized on the simplified formula's
   hash-cons id. *)

type verdict = A_sat | A_unsat | A_unknown

exception Conflict

(* per-variable abstract facts, all derived from asserted conjuncts *)
type fact = {
  mutable lo : int option; (* integer lower bound, inclusive *)
  mutable hi : int option; (* integer upper bound, inclusive *)
  mutable eqc : Formula.value option; (* pinned constant *)
  mutable neqc : Formula.value list; (* forbidden constants *)
}

let is_int_value = function Formula.V_int _ -> true | _ -> false

(* A [fact] invariant re-check after every update; every rule here is a
   genuine theory inconsistency on the asserted literals. *)
let recheck (r : fact) =
  (match r.eqc with
  | Some c ->
      if List.mem c r.neqc then raise Conflict;
      (match (c, r.lo, r.hi) with
      | _, None, None -> ()
      | Formula.V_int n, lo, hi ->
          (match lo with Some l when n < l -> raise Conflict | _ -> ());
          (match hi with Some h when n > h -> raise Conflict | _ -> ())
      (* bounds come from order literals: a non-int pin is ill-sorted *)
      | _, _, _ -> raise Conflict)
  | None -> ());
  (match (r.lo, r.hi) with
  | Some l, Some h when l > h -> raise Conflict
  | Some l, Some h when l = h && List.mem (Formula.V_int l) r.neqc ->
      raise Conflict
  | _ -> ());
  (* boolean finite domain: excluded from both truth values *)
  if List.mem (Formula.V_bool true) r.neqc
     && List.mem (Formula.V_bool false) r.neqc
  then
    match r.eqc with Some (Formula.V_bool _) -> () | _ -> raise Conflict

let min_opt o k = Some (match o with None -> k | Some v -> min v k)
let max_opt o k = Some (match o with None -> k | Some v -> max v k)

(* record [var rel const] *)
let add_const_fact (r : fact) (rel : Formula.rel) (c : Formula.value) =
  (match rel with
  | Formula.Req -> (
      match r.eqc with
      | Some c' when c' <> c -> raise Conflict
      | _ -> r.eqc <- Some c)
  | Formula.Rneq -> if not (List.mem c r.neqc) then r.neqc <- c :: r.neqc
  | Formula.Rlt | Formula.Rle | Formula.Rgt | Formula.Rge -> (
      match c with
      | Formula.V_int k -> (
          match rel with
          | Formula.Rlt -> r.hi <- min_opt r.hi (k - 1)
          | Formula.Rle -> r.hi <- min_opt r.hi k
          | Formula.Rgt -> r.lo <- max_opt r.lo (k + 1)
          | Formula.Rge -> r.lo <- max_opt r.lo k
          | _ -> assert false)
      (* order literal against a non-int constant: ill-sorted *)
      | _ -> raise Conflict));
  recheck r

(* ground [const rel const] *)
let const_holds (rel : Formula.rel) (a : Formula.value) (b : Formula.value) =
  match rel with
  | Formula.Req -> a = b
  | Formula.Rneq -> a <> b
  | _ -> (
      match (a, b) with
      | Formula.V_int x, Formula.V_int y -> (
          match rel with
          | Formula.Rlt -> x < y
          | Formula.Rle -> x <= y
          | Formula.Rgt -> x > y
          | Formula.Rge -> x >= y
          | _ -> assert false)
      (* asserted ill-sorted order literal *)
      | _ -> raise Conflict)

(* Gather facts from the formula's literal conjuncts (same polarity
   walk as the solver's assumption splitter: And under +, Or under -,
   Not flips).  Raises [Conflict] when the conjuncts alone are
   theory-inconsistent. *)
let literal_facts (f : Formula.t) : (string, fact) Hashtbl.t =
  let facts : (string, fact) Hashtbl.t = Hashtbl.create 16 in
  let get v =
    match Hashtbl.find_opt facts v with
    | Some r -> r
    | None ->
        let r = { lo = None; hi = None; eqc = None; neqc = [] } in
        Hashtbl.add facts v r;
        r
  in
  let note_literal pol (a : Formula.atom) =
    let rel = if pol then a.Formula.rel else Formula.negate_rel a.Formula.rel in
    match (Formula.term_view a.Formula.lhs, Formula.term_view a.Formula.rhs) with
    | Formula.T_var x, Formula.T_var y ->
        if String.equal x y then (
          match rel with
          | Formula.Req | Formula.Rle | Formula.Rge -> ()
          | Formula.Rneq | Formula.Rlt | Formula.Rgt -> raise Conflict)
        (* var-var facts would need a relational domain: stay imprecise *)
    | Formula.T_var x, _ ->
        add_const_fact (get x) rel
          (Option.get (Formula.value_of_term [] a.Formula.rhs))
    | _, Formula.T_var y ->
        add_const_fact (get y) (Formula.flip_rel rel)
          (Option.get (Formula.value_of_term [] a.Formula.lhs))
    | _, _ ->
        let va = Option.get (Formula.value_of_term [] a.Formula.lhs)
        and vb = Option.get (Formula.value_of_term [] a.Formula.rhs) in
        if not (const_holds rel va vb) then raise Conflict
  in
  let rec walk pol f =
    match Formula.view f with
    | Formula.True -> if not pol then raise Conflict
    | Formula.False -> if pol then raise Conflict
    | Formula.Atom a -> note_literal pol a
    | Formula.Not g -> walk (not pol) g
    | Formula.And gs -> if pol then List.iter (walk pol) gs
    | Formula.Or gs -> if not pol then List.iter (walk pol) gs
  in
  walk true f;
  facts

(* What the facts know about one side of an atom. *)
type range = {
  r_exact : Formula.value option; (* exact value in every model *)
  r_int : bool; (* integer-sorted in every model *)
  r_lo : int option; (* sound int bounds (only when [r_int]) *)
  r_hi : int option;
  r_forbid : Formula.value list;
}

let no_info =
  { r_exact = None; r_int = false; r_lo = None; r_hi = None; r_forbid = [] }

let side facts (t : Formula.term) : range =
  match Formula.term_view t with
  | Formula.T_var v -> (
      match Hashtbl.find_opt facts v with
      | None -> no_info
      | Some r -> (
          match r.eqc with
          | Some (Formula.V_int n) ->
              {
                r_exact = r.eqc;
                r_int = true;
                r_lo = Some n;
                r_hi = Some n;
                r_forbid = r.neqc;
              }
          | Some _ ->
              { no_info with r_exact = r.eqc; r_forbid = r.neqc }
          | None ->
              (* bound facts come from order literals, which force the
                 variable to be integer-sorted in any consistent model *)
              let is_int = r.lo <> None || r.hi <> None in
              {
                r_exact = None;
                r_int = is_int;
                r_lo = r.lo;
                r_hi = r.hi;
                r_forbid = r.neqc;
              }))
  | _ ->
      let v = Option.get (Formula.value_of_term [] t) in
      let b = match v with Formula.V_int n -> Some n | _ -> None in
      { r_exact = Some v; r_int = b <> None; r_lo = b; r_hi = b; r_forbid = [] }

let lt_opt a b = match (a, b) with Some x, Some y -> x < y | _ -> false
let le_opt a b = match (a, b) with Some x, Some y -> x <= y | _ -> false

(* [Some true]: the facts refute the atom's negation; [Some false]: the
   facts refute the atom itself; [None]: no one-sided refutation. *)
let katom facts (a : Formula.atom) : bool option =
  let keq lhs rhs (l : range) (r : range) =
    if Formula.term_equal lhs rhs then Some true
    else
      match (l.r_exact, r.r_exact) with
      | Some a, Some b -> Some (a = b)
      | Some v, None | None, Some v ->
          let other = if l.r_exact = None then l else r in
          if List.mem v other.r_forbid then Some false
          else if other.r_int && not (is_int_value v) then Some false
          else (
            match v with
            | Formula.V_int n
              when other.r_int
                   && (lt_opt (Some n) other.r_lo || lt_opt other.r_hi (Some n))
              ->
                Some false
            | _ -> None)
      | None, None ->
          if
            l.r_int && r.r_int
            && (lt_opt l.r_hi r.r_lo || lt_opt r.r_hi l.r_lo)
          then Some false
          else None
  in
  (* [lhs < rhs] when [strict], else [lhs <= rhs] *)
  let korder ~strict lhs rhs (l : range) (r : range) =
    let non_int s =
      match s.r_exact with Some v -> not (is_int_value v) | None -> false
    in
    if non_int l || non_int r then
      (* an order atom touching a known non-integer value is ill-sorted
         whichever way it is decided; claiming false is sound *)
      Some false
    else if Formula.term_equal lhs rhs then Some (not strict)
    else if strict then
      if lt_opt l.r_hi r.r_lo then Some true
      else if le_opt r.r_hi l.r_lo then Some false
      else None
    else if le_opt l.r_hi r.r_lo then Some true
    else if lt_opt r.r_hi l.r_lo then Some false
    else None
  in
  let l = side facts a.Formula.lhs and r = side facts a.Formula.rhs in
  match a.Formula.rel with
  | Formula.Req -> keq a.Formula.lhs a.Formula.rhs l r
  | Formula.Rneq -> Option.map not (keq a.Formula.lhs a.Formula.rhs l r)
  | Formula.Rlt -> korder ~strict:true a.Formula.lhs a.Formula.rhs l r
  | Formula.Rle -> korder ~strict:false a.Formula.lhs a.Formula.rhs l r
  | Formula.Rgt -> korder ~strict:true a.Formula.rhs a.Formula.lhs r l
  | Formula.Rge -> korder ~strict:false a.Formula.rhs a.Formula.lhs r l

let kand x y =
  match (x, y) with
  | Some false, _ | _, Some false -> Some false
  | Some true, v | v, Some true -> v
  | None, None -> None

let kor x y =
  match (x, y) with
  | Some true, _ | _, Some true -> Some true
  | Some false, v | v, Some false -> v
  | None, None -> None

let rec keval facts (f : Formula.t) : bool option =
  match Formula.view f with
  | Formula.True -> Some true
  | Formula.False -> Some false
  | Formula.Atom a -> katom facts a
  | Formula.Not g -> Option.map not (keval facts g)
  | Formula.And gs ->
      List.fold_left
        (fun acc g ->
          if acc = Some false then acc else kand acc (keval facts g))
        (Some true) gs
  | Formula.Or gs ->
      List.fold_left
        (fun acc g -> if acc = Some true then acc else kor acc (keval facts g))
        (Some false) gs

(* Best-effort concrete witness from the facts; only trusted after
   [Formula.eval] confirms it. *)
let witness_env facts (f : Formula.t) : (string * Formula.value) list =
  let pick v =
    match Hashtbl.find_opt facts v with
    | None -> Formula.V_int 0
    | Some r -> (
        match r.eqc with
        | Some c -> c
        | None when r.lo = None && r.hi = None -> (
            (* a boolean exclusion types the variable as boolean *)
            match
              ( List.mem (Formula.V_bool true) r.neqc,
                List.mem (Formula.V_bool false) r.neqc )
            with
            | true, false -> Formula.V_bool false
            | false, true -> Formula.V_bool true
            | _ ->
                let n = ref 0 in
                while List.mem (Formula.V_int !n) r.neqc do
                  incr n
                done;
                Formula.V_int !n)
        | None ->
            let base =
              match (r.lo, r.hi) with
              | Some l, _ -> l
              | None, Some h -> min 0 h
              | None, None -> 0
            in
            let n = ref base in
            let tries = ref (List.length r.neqc + 1) in
            while
              !tries > 0
              && List.mem (Formula.V_int !n) r.neqc
              && (match r.hi with Some h -> !n < h | None -> true)
            do
              incr n;
              decr tries
            done;
            Formula.V_int !n)
  in
  List.map (fun v -> (v, pick v)) (Formula.variables f)

(* ---- memoized refutation (the solver hot path) ---- *)

let refuted_uncached (f : Formula.t) : bool =
  match literal_facts f with
  | exception Conflict -> true
  | facts -> keval facts f = Some false

let memo_lock = Mutex.create ()
let memo : (int, bool) Hashtbl.t = Hashtbl.create 4096
let memo_cap = 1 lsl 16

let memo_find id =
  Mutex.lock memo_lock;
  let r = Hashtbl.find_opt memo id in
  Mutex.unlock memo_lock;
  r

let memo_store id v =
  Mutex.lock memo_lock;
  if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
  Hashtbl.replace memo id v;
  Mutex.unlock memo_lock

let refute (f : Formula.t) : bool =
  let f = Formula.simplify f in
  match Formula.view f with
  | Formula.True -> false
  | Formula.False -> true
  | _ -> (
      let id = Formula.id f in
      match memo_find id with
      | Some v -> v
      | None ->
          let v = refuted_uncached f in
          memo_store id v;
          v)

let eval (f : Formula.t) : verdict =
  let f = Formula.simplify f in
  match Formula.view f with
  | Formula.True -> A_sat
  | Formula.False -> A_unsat
  | _ -> (
      match literal_facts f with
      | exception Conflict -> A_unsat
      | facts ->
          if keval facts f = Some false then A_unsat
          else if Formula.eval (witness_env facts f) f = Some true then A_sat
          else A_unknown)

let memo_size () =
  Mutex.lock memo_lock;
  let n = Hashtbl.length memo in
  Mutex.unlock memo_lock;
  n

let reset_memo () =
  Mutex.lock memo_lock;
  Hashtbl.reset memo;
  Mutex.unlock memo_lock
