lib/minilang/builtins.ml: List
