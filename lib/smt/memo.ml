(** Global SMT verdict cache.

    The enforcement engine re-decides the same path-condition formulas
    over and over: consecutive program versions share most of their
    traces, and every rule of a book re-explores overlapping paths.  This
    module wraps {!Solver.solve} / {!Solver.check_trace} with a memo
    table keyed by the *id* of the simplified formula — formulas are
    hash-consed, so equal ids denote the same formula and a cached
    verdict is always sound to reuse.  The hit path allocates nothing:
    no rendering, one int hash probe (the pre-hash-consing cache keyed
    by canonical renderings rebuilt a string on every lookup).

    The cache is process-global and mutex-protected (the engine's worker
    domains share it), disabled by default so that code paths outside the
    engine behave exactly as before.  Hit/miss counters feed the engine's
    "solver calls saved" statistic. *)

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let lock = Mutex.create ()

(* id -> (simplified formula, verdict).  The formula rides along purely
   for {!entries}/{!restore}: snapshots must re-key by re-interning in
   the loading process (ids are process-local), so the table has to
   remember what each id denoted.  Interned nodes are never evicted
   anyway, so this pins no extra memory. *)
let table : (int, Formula.t * Solver.verdict) Hashtbl.t = Hashtbl.create 1024

let max_entries = 1 lsl 17

let hit_count = ref 0

let miss_count = ref 0

let hits () =
  Mutex.lock lock;
  let n = !hit_count in
  Mutex.unlock lock;
  n

let misses () =
  Mutex.lock lock;
  let n = !miss_count in
  Mutex.unlock lock;
  n

let size () =
  Mutex.lock lock;
  let n = Hashtbl.length table in
  Mutex.unlock lock;
  n

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  hit_count := 0;
  miss_count := 0;
  Mutex.unlock lock

(* The cache key: the interned id of the simplified formula.
   [Formula.simplify] dedups and flattens (modulo canonical atoms) and
   hash-consing makes ids injective on structure, so equal keys imply
   equal formulas — the soundness requirement.  Syntactically different
   but equivalent formulas may miss; that only costs a solver call.
   (Dropping an entry at the [max_entries] reset is equally harmless:
   ids are never reused, so a stale table can only miss, never lie.) *)
let key_of (f : Formula.t) : int * Formula.t =
  let s = Formula.simplify f in
  (Formula.id s, s)

(** [solve f]: like {!Solver.solve}, but consults the verdict cache when
    enabled.  Verdicts (including models) are deterministic functions of
    the formula, so cached and uncached runs agree. *)
let solve (f : Formula.t) : Solver.verdict =
  if not (enabled ()) then Solver.solve f
  else begin
    let key, simplified = key_of f in
    let cached =
      Mutex.lock lock;
      let r = Hashtbl.find_opt table key in
      (match r with Some _ -> incr hit_count | None -> incr miss_count);
      Mutex.unlock lock;
      r
    in
    match cached with
    | Some (_, v) -> v
    | None -> (
        let v = Solver.solve simplified in
        match v with
        | Solver.Unknown _ ->
            (* undecided verdicts come from budgets, faults, or open
               breakers — transient conditions that must not poison the
               cache; the next query recomputes *)
            v
        | Solver.Sat _ | Solver.Unsat ->
            Mutex.lock lock;
            if Hashtbl.length table >= max_entries then Hashtbl.reset table;
            Hashtbl.replace table key (simplified, v);
            Mutex.unlock lock;
            v)
  end

(** Context-aware variant: like {!solve} but the miss path solves through
    {!Solver.solve_in_context}, reusing the assumption context's warm
    incremental state.  Same cache key (the simplified formula's id), so
    trie-driven and per-trace checking populate and hit the very same
    entries; [Unknown] is never stored, exactly as above. *)
let solve_in (ctx : Solver.context) (f : Formula.t) : Solver.verdict =
  if not (enabled ()) then Solver.solve_in_context ctx f
  else begin
    let key, simplified = key_of f in
    let cached =
      Mutex.lock lock;
      let r = Hashtbl.find_opt table key in
      (match r with Some _ -> incr hit_count | None -> incr miss_count);
      Mutex.unlock lock;
      r
    in
    match cached with
    | Some (_, v) -> v
    | None -> (
        let v = Solver.solve_in_context ctx simplified in
        match v with
        | Solver.Unknown _ -> v
        | Solver.Sat _ | Solver.Unsat ->
            Mutex.lock lock;
            if Hashtbl.length table >= max_entries then Hashtbl.reset table;
            Hashtbl.replace table key (simplified, v);
            Mutex.unlock lock;
            v)
  end

(** Cached complement check (same contract as {!Solver.check_trace}). *)
let check_trace ~(pc : Formula.t) ~(checker : Formula.t) : Solver.trace_check =
  match solve (Formula.conj [ pc; Formula.negate checker ]) with
  | Solver.Unsat -> Solver.Verified
  | Solver.Sat model -> Solver.Violation model
  | Solver.Unknown reason -> Solver.Undecided reason

(** Cached direct check (same contract as {!Solver.check_trace_direct}). *)
let check_trace_direct ~(pc : Formula.t) ~(checker : Formula.t) :
    Solver.trace_check =
  match solve (Formula.conj [ pc; checker ]) with
  | Solver.Unsat -> Solver.Violation []
  | Solver.Sat _ -> Solver.Verified
  | Solver.Unknown reason -> Solver.Undecided reason

(** Trie-driven complement check: [ctx] holds the pc prefix the trie walk
    has pushed so far; the caller guarantees the context's assumptions
    conjoin to [pc] (so the full conjunction entails them).  Cache key
    and verdict are identical to {!check_trace} — the context only makes
    misses cheaper. *)
let check_trace_in (ctx : Solver.context) ~(pc : Formula.t)
    ~(checker : Formula.t) : Solver.trace_check =
  match solve_in ctx (Formula.conj [ pc; Formula.negate checker ]) with
  | Solver.Unsat -> Solver.Verified
  | Solver.Sat model -> Solver.Violation model
  | Solver.Unknown reason -> Solver.Undecided reason

(** Trie-driven direct check (contract of {!Solver.check_trace_direct}). *)
let check_trace_direct_in (ctx : Solver.context) ~(pc : Formula.t)
    ~(checker : Formula.t) : Solver.trace_check =
  match solve_in ctx (Formula.conj [ pc; checker ]) with
  | Solver.Unsat -> Solver.Violation []
  | Solver.Sat _ -> Solver.Verified
  | Solver.Unknown reason -> Solver.Undecided reason

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(** Every cached (simplified formula, verdict) pair, unordered.  The
    caller converts to {!Wire} forms before persisting — interned values
    must never be marshalled raw (ids are process-local). *)
let entries () : (Formula.t * Solver.verdict) list =
  Mutex.lock lock;
  let es = Hashtbl.fold (fun _ e acc -> e :: acc) table [] in
  Mutex.unlock lock;
  es

(** Seed the cache from a snapshot: each formula is re-simplified and
    re-keyed by its id {e in this process} (the loader already rebuilt
    it through the smart constructors).  [Unknown] verdicts and entries
    already present are skipped; counters are untouched — warm entries
    count as hits only when a query actually lands on them.  Returns the
    number of entries added. *)
let restore (es : (Formula.t * Solver.verdict) list) : int =
  let added = ref 0 in
  List.iter
    (fun (f, v) ->
      match v with
      | Solver.Unknown _ -> ()
      | Solver.Sat _ | Solver.Unsat ->
          let key, simplified = key_of f in
          Mutex.lock lock;
          if
            (not (Hashtbl.mem table key))
            && Hashtbl.length table < max_entries
          then begin
            Hashtbl.replace table key (simplified, v);
            incr added
          end;
          Mutex.unlock lock)
    es;
  !added
