(** Deterministic inference backend — the LLM substitute.

    Interface-compatible with the paper's two-phase inference (Listing 1):
    a ticket bundle in, JSON-shaped structured semantics out.  Internally
    it performs the same analysis the prompt asks the model to walk
    through: structural diff → added guards → contracts; lock-scope diff →
    lock-discipline rules; the discussion's first sentence as the
    high-level semantics.  A seeded noise model reintroduces the LLM
    failure modes of §5 for the reliability experiments. *)

type inferred = {
  inf_ticket : string;
  inf_high_level : string;
  inf_rules : Semantics.Rule.t list;
  inf_reasoning : string list;
}

(** Per-rule corruption probability with a deterministic seeded generator;
    corrupted rules get a [.weak]/[.flip]/[.ghost] id suffix. *)
type noise = { epsilon : float; seed : int }

val no_noise : noise

(** The degraded answer of an unavailable oracle: no rules, the reason
    recorded in [inf_reasoning].  Also emitted on the resilience event
    bus. *)
val degraded_inference : Ticket.t -> string -> inferred

(** Run inference on one ticket; deterministic for a fixed [noise].
    An injection point: crash/transient faults raise
    {!Resilience.Fault.Injected}; budget faults and an open breaker
    return {!degraded_inference}. *)
val infer : ?noise:noise -> Ticket.t -> inferred

(** Pluggable client type: a real LLM backend maps the same ticket bundle
    to the same structured output. *)
type client = Ticket.t -> inferred

val default_client : client

(** Render an inference in the exact output format of Listing 1. *)
val to_json : inferred -> string
