lib/diffing/line_diff.mli:
