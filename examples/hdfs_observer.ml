(* Reproduction of the paper's Bug #2 (§4, HDFS-17768):

   If the block report of the observer namenode is delayed, listing results
   can return blocks without any location.  HDFS-13924 and HDFS-16732 added
   location checks to the read and listing paths; LISA finds that the
   batched-listing path of the latest release (e8a64d0 in the paper) still
   lacks the check.

   Run with: dune exec examples/hdfs_observer.exe *)

let () =
  let case =
    match Corpus.Registry.find_case "hdfs-observer-locations" with
    | Some c -> c
    | None -> failwith "corpus case missing"
  in

  (* demonstrate the failure mode concretely first: a delayed block report
     leaves a block with zero known locations on the observer *)
  let latest = Corpus.Case.program_at case case.Corpus.Case.latest_stage in
  Fmt.pr "concrete failure on the latest release:@.";
  let demo_src =
    case.Corpus.Case.source case.Corpus.Case.latest_stage
    ^ {|
method scenario_empty_locations(): str {
  var nn: ObserverNameNode = makeObserver();
  // the batched listing happily serves block 2, whose report is delayed
  var r: int = nn.getBatchedListing(2);
  return "served block " + toStr(r) + " with 0 locations (client will fail)";
}
|}
  in
  let demo = Minilang.Parser.program ~file:"demo.mj" demo_src in
  (match Minilang.Interp.run_function demo "scenario_empty_locations" [] with
  | st, v -> Fmt.pr "  %s@." (Minilang.Value.to_string ~heap:st.Minilang.Interp.heap v)
  | exception _ -> Fmt.pr "  scenario error@.");

  (* learn the location contract from the two closed tickets *)
  let closed =
    List.filter
      (fun (t : Oracle.Ticket.t) -> t.Oracle.Ticket.ticket_id <> "HDFS-17768")
      (Corpus.Case.tickets case)
  in
  let book, _ = Lisa.Pipeline.learn_all ~system:"hdfs" closed in
  Fmt.pr "@.%s@." (Semantics.Rulebook.to_string book);

  Fmt.pr "@.asserting the contract over all reachable paths of the latest release:@.";
  let reports = Lisa.Pipeline.enforce latest book in
  List.iter
    (fun (r : Lisa.Checker.rule_report) ->
      Fmt.pr "%s@." (Lisa.Checker.report_summary r);
      List.iter
        (fun (t : Lisa.Checker.trace_verdict) ->
          match t.Lisa.Checker.tv_result with
          | Smt.Solver.Violation m ->
              Fmt.pr "  NEW BUG in %s: %s@." t.Lisa.Checker.tv_method
                (Smt.Solver.model_to_string m)
          | Smt.Solver.Verified | Smt.Solver.Undecided _ -> ())
        r.Lisa.Checker.rep_violations)
    reports;
  Fmt.pr
    "@.-> this is HDFS-17768: observer network delay causing empty block location@.\
     \   for getBatchedListing.  Proposed fix approved by HDFS developers.@.";
  Fmt.pr "@.%s@."
    (Lisa.Fix.print_case_fixes (Lisa.Fix.fix_unknown_bug "hdfs-observer-locations"))
