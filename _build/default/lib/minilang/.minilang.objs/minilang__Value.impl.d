lib/minilang/value.ml: Fmt Hashtbl List String
