(* Edge-case tests: interpreter builtins and control flow, parser corners,
   solver corners — behaviours the main suites don't pin down. *)

open Minilang

let run body =
  let p = Parser.program (Fmt.str "method main(): any { %s }" body) in
  let _, v = Interp.run_function p "main" [] in
  v

let check_int name expected body =
  Alcotest.test_case name `Quick (fun () ->
      match run body with
      | Value.V_int n -> Alcotest.(check int) name expected n
      | v -> Alcotest.fail (Fmt.str "%s: got %s" name (Value.type_name v)))

let check_bool name expected body =
  Alcotest.test_case name `Quick (fun () ->
      match run body with
      | Value.V_bool b -> Alcotest.(check bool) name expected b
      | v -> Alcotest.fail (Fmt.str "%s: got %s" name (Value.type_name v)))

let check_str name expected body =
  Alcotest.test_case name `Quick (fun () ->
      match run body with
      | Value.V_str s -> Alcotest.(check string) name expected s
      | v -> Alcotest.fail (Fmt.str "%s: got %s" name (Value.type_name v)))

let interp_builtin_cases =
  [
    check_int "abs negative" 5 "return abs(0 - 5);";
    check_int "min/max" 7 "return min(9, 7) + max(0, 0);";
    check_int "strLen" 5 {|return strLen("hello");|};
    check_str "concat builtin" "ab" {|return concat("a", "b");|};
    check_bool "startsWith true" true {|return startsWith("foobar", "foo");|};
    check_bool "startsWith false" false {|return startsWith("foo", "foobar");|};
    check_str "toStr of bool" "true" "return toStr(1 == 1);";
    check_str "toStr of null" "null" "return toStr(null);";
    check_int "listSet" 42
      "var l: list = listNew(); listAdd(l, 1); listSet(l, 0, 42); return listGet(l, 0);";
    check_int "listRemoveAt" 3
      "var l: list = listNew(); listAdd(l, 1); listAdd(l, 3); listRemoveAt(l, 0); return listGet(l, 0);";
    check_bool "listContains" true
      "var l: list = listNew(); listAdd(l, 9); return listContains(l, 9);";
    check_int "mapRemove" 0
      {|var m: map = mapNew(); mapPut(m, "k", 1); mapRemove(m, "k"); return mapSize(m);|};
    check_str "mapKeys insertion order" "ab"
      {|var m: map = mapNew(); mapPut(m, "a", 1); mapPut(m, "b", 2); mapPut(m, "a", 3);
        var ks: list = mapKeys(m);
        var s: str = "";
        var i: int = 0;
        while (i < listSize(ks)) { s = s + listGet(ks, i); i = i + 1; }
        return s;|};
    check_int "readRecord passes value" 11 "return readRecord(11);";
    check_int "rpcCall passes value" 12 {|return rpcCall("peer", 12);|};
    check_bool "string compare lt" true {|return "abc" < "abd";|};
    check_int "mod" 2 "return 17 % 5;";
    check_int "division truncates" 3 "return 10 / 3;";
    check_str "string plus value" "n=3" {|return "n=" + 3;|};
  ]

let interp_control_cases =
  [
    check_int "nested try rethrow" 2
      {|try {
          try { fail("inner"); } catch (e) { fail("outer"); }
        } catch (e2) {
          if (e2 == "outer") { return 2; }
          return 1;
        }|};
    check_int "while false never runs" 0
      "var n: int = 0; while (false) { n = 9; } return n;";
    check_int "nested loops with break" 6
      {|var acc: int = 0;
        var i: int = 0;
        while (i < 3) {
          var j: int = 0;
          while (true) {
            j = j + 1;
            if (j >= 2) { break; }
          }
          acc = acc + j;
          i = i + 1;
        }
        return acc;|};
    Alcotest.test_case "recursion fib" `Quick (fun () ->
        let p =
          Parser.program
            "method fib(n: int): int { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
             method main(): int { return fib(7); }"
        in
        let _, v = Interp.run_function p "main" [] in
        Alcotest.(check bool) "fib 7 = 13" true (Value.equal v (Value.V_int 13)));
  ]

let test_call_depth_limit () =
  let p = Parser.program "method f(n: int): int { return f(n + 1); }" in
  let config = { Interp.default_config with Interp.max_call_depth = 50 } in
  match Interp.run_function ~config p "f" [ Value.V_int 0 ] with
  | _ -> Alcotest.fail "expected depth limit"
  | exception Interp.Runtime_error (m, _) ->
      Alcotest.(check bool) "depth error" true (Astring_contains.contains m "depth")
  | exception Interp.Out_of_fuel -> Alcotest.fail "hit fuel before depth"

let test_division_by_zero () =
  match run "return 1 / 0;" with
  | _ -> Alcotest.fail "expected error"
  | exception Interp.Runtime_error (m, _) ->
      Alcotest.(check bool) "div by zero" true (Astring_contains.contains m "zero")

let test_list_out_of_bounds () =
  match run "var l: list = listNew(); return listGet(l, 0);" with
  | _ -> Alcotest.fail "expected error"
  | exception Interp.Runtime_error (m, _) ->
      Alcotest.(check bool) "bounds" true (Astring_contains.contains m "bounds")

let test_clock_advances () =
  let p = Parser.program "method main(): int { var a: int = now(); var b: int = 1; return now() - a; }" in
  let _, v = Interp.run_function p "main" [] in
  match v with
  | Value.V_int d -> Alcotest.(check bool) "clock advanced" true (d > 0)
  | _ -> Alcotest.fail "expected int"

let test_console_capture () =
  let p = Parser.program {|method main() { print("hello"); print(42); }|} in
  let st, _ = Interp.run_function p "main" [] in
  Alcotest.(check string) "console" "hello\n42\n" (Buffer.contents st.Interp.console)

(* parser corners *)
let test_parse_trailing_garbage () =
  match Parser.expression "1 + 2 extra" with
  | _ -> Alcotest.fail "expected error"
  | exception Parser.Error (m, _) ->
      Alcotest.(check bool) "trailing" true (Astring_contains.contains m "trailing")

let test_parse_deep_nesting () =
  let e = Parser.expression (String.make 40 '(' ^ "x" ^ String.make 40 ')') in
  match e.Ast.e with Ast.Var "x" -> () | _ -> Alcotest.fail "parens collapse"

let test_parse_keyword_not_ident () =
  match Parser.program "method class() { }" with
  | _ -> Alcotest.fail "keyword as name must fail"
  | exception Parser.Error _ -> ()

let test_parse_negative_literal_argument () =
  let e = Parser.expression "f(-3)" in
  match e.Ast.e with
  | Ast.Call ("f", [ { e = Ast.Unop (Ast.Neg, { e = Ast.Int_lit 3; _ }); _ } ]) -> ()
  | _ -> Alcotest.fail "negative arg shape"

(* solver corners *)
let v = Smt.Formula.tvar

let i = Smt.Formula.tint

let test_smt_string_equalities () =
  Alcotest.(check bool) "x=\"a\" && x=\"b\" unsat" true
    (Smt.Solver.is_unsat
       (Smt.Formula.conj
          [
            Smt.Formula.eq (v "x") (Smt.Formula.tstr "a");
            Smt.Formula.eq (v "x") (Smt.Formula.tstr "b");
          ]))

let test_smt_long_order_chain () =
  (* x1 < x2 < ... < x6, all in [0,5] is satisfiable only with exact fit *)
  let vars = List.init 6 (fun k -> v (Fmt.str "x%d" k)) in
  let rec chain = function
    | a :: (b :: _ as rest) -> Smt.Formula.lt a b :: chain rest
    | _ -> []
  in
  let bounds =
    List.concat_map (fun x -> [ Smt.Formula.ge x (i 0); Smt.Formula.le x (i 5) ]) vars
  in
  Alcotest.(check bool) "fits exactly" true
    (Smt.Solver.is_sat (Smt.Formula.conj (chain vars @ bounds)));
  let tight =
    List.concat_map (fun x -> [ Smt.Formula.ge x (i 0); Smt.Formula.le x (i 4) ]) vars
  in
  Alcotest.(check bool) "one slot short" true
    (Smt.Solver.is_unsat (Smt.Formula.conj (chain vars @ tight)))

let test_smt_mixed_null_int () =
  (* a variable equal to null cannot satisfy an order atom *)
  Alcotest.(check bool) "null ordering unsat" true
    (Smt.Solver.is_unsat
       (Smt.Formula.conj [ Smt.Formula.eq (v "x") Smt.Formula.tnull; Smt.Formula.lt (v "x") (i 3) ]))

let test_smt_empty_and_or () =
  Alcotest.(check bool) "And [] valid" true (Smt.Solver.is_valid (Smt.Formula.conj []));
  Alcotest.(check bool) "Or [] unsat" true (Smt.Solver.is_unsat (Smt.Formula.disj []))

let test_smt_model_satisfies () =
  let f =
    Smt.Formula.conj
      [
        Smt.Formula.disj [ Smt.Formula.bvar "p"; Smt.Formula.bvar "q" ];
        Smt.Formula.negate (Smt.Formula.bvar "p");
      ]
  in
  match Smt.Solver.solve f with
  | Smt.Solver.Sat model ->
      (* q must be true, p false in any model *)
      (* the model assigns signs to canonical atoms; read off the sign of
         the atom [name == true] specifically *)
      let lookup name =
        List.find_map
          (fun ((a : Smt.Formula.atom), sign) ->
            match
              ( a.Smt.Formula.rel,
                Smt.Formula.term_view a.Smt.Formula.lhs,
                Smt.Formula.term_view a.Smt.Formula.rhs )
            with
            | Smt.Formula.Req, Smt.Formula.T_var x, Smt.Formula.T_bool true
              when x = name ->
                Some sign
            | _ -> None)
          model
      in
      Alcotest.(check (option bool)) "p false" (Some false) (lookup "p");
      Alcotest.(check (option bool)) "q true" (Some true) (lookup "q")
  | Smt.Solver.Unsat | Smt.Solver.Unknown _ -> Alcotest.fail "should be sat"

let suite =
  [
    ("edge.interp.builtins", interp_builtin_cases);
    ( "edge.interp.control",
      interp_control_cases
      @ [
          Alcotest.test_case "call depth limit" `Quick test_call_depth_limit;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "list bounds" `Quick test_list_out_of_bounds;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "console capture" `Quick test_console_capture;
        ] );
    ( "edge.parser",
      [
        Alcotest.test_case "trailing garbage" `Quick test_parse_trailing_garbage;
        Alcotest.test_case "deep nesting" `Quick test_parse_deep_nesting;
        Alcotest.test_case "keyword as name" `Quick test_parse_keyword_not_ident;
        Alcotest.test_case "negative literal arg" `Quick test_parse_negative_literal_argument;
      ] );
    ( "edge.smt",
      [
        Alcotest.test_case "string equalities" `Quick test_smt_string_equalities;
        Alcotest.test_case "long order chain" `Quick test_smt_long_order_chain;
        Alcotest.test_case "null vs order" `Quick test_smt_mixed_null_int;
        Alcotest.test_case "empty connectives" `Quick test_smt_empty_and_or;
        Alcotest.test_case "model shape" `Quick test_smt_model_satisfies;
      ] );
  ]
