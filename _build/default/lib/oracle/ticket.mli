(** Failure-ticket bundles — the unit of input to inference, matching the
    three inputs of the paper's Listing 1 prompt: failure description and
    developer discussion, the code patch (computed, not stored), and the
    source after the patch. *)

type t = {
  ticket_id : string;  (** e.g. ["ZK-1208"] *)
  system : string;  (** subject system, e.g. ["zookeeper"] *)
  title : string;
  description : string;  (** failure report text *)
  discussion : string;  (** developer discussion summary; by convention its
                            first sentence states the high-level semantics *)
  buggy_source : string;  (** full source before the fix *)
  patched_source : string;  (** full source after the fix *)
  regression_tests : string list;  (** tests added with the fix *)
}

val make :
  ticket_id:string ->
  system:string ->
  title:string ->
  description:string ->
  discussion:string ->
  buggy_source:string ->
  patched_source:string ->
  regression_tests:string list ->
  t

(** The unified diff of the fix, computed from the stored sources. *)
val diff : t -> string

val buggy_program : t -> Minilang.Ast.program

val patched_program : t -> Minilang.Ast.program

val summary : t -> string
