(* lib/triage: witness-replay triage.  Synthesis soundness as a qcheck
   property (every enumerated valuation satisfies its formula), tier
   codec round-trip, determinism of tier assignment across pool widths
   and repeated runs under a fixed noise seed, and the zero-loss
   guarantee: with the real (no-noise) oracle, no seed-corpus finding
   is ever demoted to Likely-FP. *)

let isolated f () =
  Lisa.Chaos.reset_shared_state ();
  Fun.protect ~finally:Lisa.Chaos.reset_shared_state f

(* ------------------------------------------------------------------ *)
(* Witness synthesis                                                   *)
(* ------------------------------------------------------------------ *)

(* random well-typed guard formulas, the shape real checker conditions
   take: int comparisons (vars and constants), bool and string equality,
   null checks, under conjunction / disjunction / negation.  Keeping each
   variable at a single type matters — the solver rejects type-conflicted
   formulas outright while three-valued eval just answers None for the
   garbage atom, and the properties relate the two. *)
let gen_guard : Smt.Formula.t QCheck.arbitrary =
  let open QCheck in
  let module F = Smt.Formula in
  let int_term =
    Gen.oneof
      [
        Gen.map F.tvar (Gen.oneofl [ "x"; "y"; "Snapshot.ttl" ]);
        Gen.map (fun n -> F.tint (n mod 7)) Gen.small_int;
      ]
  in
  let any_rel = Gen.oneofl F.[ Req; Rneq; Rlt; Rle; Rgt; Rge ] in
  let eq_rel = Gen.oneofl F.[ Req; Rneq ] in
  let leaf =
    Gen.oneof
      [
        Gen.map3 (fun r l rh -> F.atom r l rh) any_rel int_term int_term;
        Gen.map2
          (fun r b -> F.atom r (F.tvar "flag") (F.tbool b))
          eq_rel Gen.bool;
        Gen.map2
          (fun r s -> F.atom r (F.tvar "name") (F.tstr s))
          eq_rel
          (Gen.oneofl [ "a"; "b" ]);
        Gen.map (fun r -> F.atom r (F.tvar "Snapshot") F.tnull) eq_rel;
      ]
  in
  let rec go n =
    if n <= 0 then leaf
    else
      Gen.oneof
        [
          leaf;
          Gen.map F.negate (go (n - 1));
          Gen.map2 (fun a b -> F.conj [ a; b ]) (go (n / 2)) (go (n / 2));
          Gen.map2 (fun a b -> F.disj [ a; b ]) (go (n / 2)) (go (n / 2));
        ]
  in
  make ~print:F.to_string (Gen.sized (fun n -> go (min n 5)))

let prop_synthesis_sound =
  QCheck.Test.make ~count:300
    ~name:"every synthesized valuation satisfies its formula"
    gen_guard
    (fun f ->
      let valuations, _complete =
        Triage.synthesize ~max_nodes:5_000 ~max_attempts:6 f
      in
      (* synthesize enumerates over the simplified formula (tautologous
         sub-terms may drop their variables entirely), so that is the
         form a witness must satisfy *)
      let simplified = Smt.Formula.simplify f in
      List.for_all
        (fun v -> Smt.Formula.eval v simplified = Some true)
        valuations)

let prop_unsat_means_no_witness =
  QCheck.Test.make ~count:300
    ~name:"solver-unsat formulas never synthesize a witness"
    gen_guard
    (fun f ->
      match Smt.Solver.solve f with
      | Smt.Solver.Unsat ->
          let valuations, _ =
            Triage.synthesize ~max_nodes:20_000 ~max_attempts:8 f
          in
          valuations = []
      | _ -> true)

let test_tier_codec () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Triage.tier_to_string t ^ " round-trips")
        true
        (Triage.tier_of_string (Triage.tier_to_string t) = Some t))
    [ Triage.Witnessed; Triage.Consistent; Triage.Likely_fp ];
  Alcotest.(check bool) "unknown tier rejected" true
    (Triage.tier_of_string "definitely-real" = None)

let test_synthesize_finds_known_witness () =
  let module F = Smt.Formula in
  (* the HBASE-27671 shape: !(ttl <= 0 || now < expiry) /\ snap != null *)
  let f =
    F.conj
      [
        F.negate
          (F.disj
             [
               F.atom F.Rle (F.tvar "Snapshot.ttl") (F.tint 0);
               F.atom F.Rlt (F.tvar "nowTs") (F.tvar "Snapshot.expiryTs");
             ]);
        F.atom F.Rneq (F.tvar "Snapshot") F.tnull;
      ]
  in
  let valuations, complete =
    Triage.synthesize ~max_nodes:20_000 ~max_attempts:8 f
  in
  Alcotest.(check bool) "found at least one witness" true (valuations <> []);
  Alcotest.(check bool) "enumeration completed in budget" true complete;
  List.iter
    (fun v ->
      Alcotest.(check bool)
        "witness satisfies the violation formula" true
        (Smt.Formula.eval v f = Some true))
    valuations

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

(* a noisy book (epsilon 1.0, fixed seed, cross-checking off so the
   corrupted rules actually reach enforcement) against hbase v2: tier
   assignment must be identical run-to-run and jobs=1 vs jobs=4 *)
let noisy_tiers ~jobs () =
  let config =
    {
      Lisa.Pipeline.default_config with
      Lisa.Pipeline.noise = { Oracle.Inference.epsilon = 1.0; seed = 7 };
      cross_check = false;
    }
  in
  let book = Lisa.System_scan.learn_system_book ~config "hbase" in
  let p = Corpus.Registry.system_program "hbase" ~version:2 in
  let engine =
    Engine.Scheduler.create
      ~config:{ Engine.Scheduler.default_config with Engine.Scheduler.jobs }
      ()
  in
  let reports =
    Lisa.Pipeline.enforce_with engine p book
    |> List.filter Engine.Checker.has_violations
  in
  Triage.triage_reports p reports
  |> List.map (fun (t : Triage.triaged) ->
         ( t.Triage.t_report.Engine.Checker.rep_rule.Semantics.Rule.rule_id,
           List.map
             (fun (f : Triage.finding) ->
               ( f.Triage.f_rule_id,
                 f.Triage.f_method,
                 f.Triage.f_target_sid,
                 Triage.tier_to_string f.Triage.f_tier,
                 f.Triage.f_reason ))
             t.Triage.t_findings ))

let test_triage_deterministic () =
  let first = noisy_tiers ~jobs:1 () in
  Alcotest.(check bool) "noisy run produced findings" true (first <> []);
  Alcotest.(check bool) "repeated run identical" true
    (noisy_tiers ~jobs:1 () = first);
  Alcotest.(check bool) "jobs=4 identical to jobs=1" true
    (noisy_tiers ~jobs:4 () = first)

(* ------------------------------------------------------------------ *)
(* Zero-loss                                                           *)
(* ------------------------------------------------------------------ *)

(* with the real oracle (no noise), every finding across the whole
   E11 seed corpus must keep a Witnessed or Consistent tier: triage
   never demotes a true positive to Likely-FP *)
let test_no_noise_zero_loss () =
  let results, _ =
    Lisa.System_scan.run_engine ~triage:Triage.default_config ()
  in
  let rows =
    List.concat_map
      (fun (r : Lisa.System_scan.system_result) ->
        List.concat_map
          (fun (vr : Lisa.System_scan.version_row) ->
            List.map
              (fun (id, t) -> (r.Lisa.System_scan.sys_name, id, t))
              vr.Lisa.System_scan.vr_tiers)
          r.Lisa.System_scan.sys_rows)
      results
  in
  Alcotest.(check bool) "corpus findings were tiered" true (rows <> []);
  List.iter
    (fun (sys, id, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s not demoted (%s)" sys id t)
        true
        (t = "witnessed" || t = "consistent"))
    rows

let suite =
  [
    ( "triage.synthesis",
      [
        QCheck_alcotest.to_alcotest prop_synthesis_sound;
        QCheck_alcotest.to_alcotest prop_unsat_means_no_witness;
        Alcotest.test_case "tier codec round-trips" `Quick test_tier_codec;
        Alcotest.test_case "known witness synthesized" `Quick
          test_synthesize_finds_known_witness;
      ] );
    ( "triage.verdicts",
      [
        Alcotest.test_case "deterministic: repeat + jobs=1 vs jobs=4" `Slow
          (isolated test_triage_deterministic);
        Alcotest.test_case "no-noise: no corpus finding demoted" `Slow
          (isolated test_no_noise_zero_loss);
      ] );
  ]
