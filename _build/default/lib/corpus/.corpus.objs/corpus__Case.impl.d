lib/corpus/case.ml: Fmt List Minilang Oracle String
