(* Tests for the rule language, translation/normalization, rulebooks, and
   the developer DSL. *)

open Minilang

(* ------------------------------------------------------------------ *)
(* Translation (normalization)                                         *)
(* ------------------------------------------------------------------ *)

let method_env src meth =
  let p = Parser.program src in
  match Ast.methods_named p meth with
  | (cls_name, m) :: _ ->
      let cls =
        match cls_name with Some c -> Ast.find_class p c | None -> None
      in
      (p, Semantics.Translate.env_of_method p cls m, m)
  | [] -> Alcotest.fail ("no method " ^ meth)

let guard_of (m : Ast.method_decl) : Ast.expr =
  let found = ref None in
  Ast.iter_stmts
    (fun st -> match st.Ast.s with Ast.If (c, _, _) when !found = None -> found := Some c | _ -> ())
    m.Ast.m_body;
  Option.get !found

let src_session =
  {|
class Session {
  field closing: bool = false;
  field ttl: int = 30;
  method isClosing(): bool { return this.closing; }
}
class P {
  field tracker: map;
  method act(sessionId: int) {
    var session: Session = mapGet(this.tracker, sessionId);
    if (session == null || session.isClosing()) {
      throw "expired";
    }
    doWork(sessionId);
  }
}
method doWork(x: int) { }
|}

let test_translate_observer_inlining () =
  let _, env, m = method_env src_session "act" in
  match Semantics.Translate.guard_condition env ~early_exit:true (guard_of m) with
  | Some f ->
      (* session.isClosing() must normalize to the field path *)
      Alcotest.(check string)
        "condition" "(Session != null && Session.closing != true)"
        (Smt.Formula.to_string f)
  | None -> Alcotest.fail "translation failed"

let test_translate_class_canonical_roots () =
  let _, env, _ = method_env src_session "act" in
  let e = Parser.expression "session.ttl > 0" in
  match Semantics.Translate.formula_of env e with
  | Some f ->
      Alcotest.(check string) "local renamed by class" "Session.ttl > 0"
        (Smt.Formula.to_string f)
  | None -> Alcotest.fail "translation failed"

let test_translate_wrapper_guard_polarity () =
  let _, env, _ = method_env src_session "act" in
  let g = Parser.expression "session.ttl > 0" in
  (match Semantics.Translate.guard_condition env ~early_exit:false g with
  | Some f -> Alcotest.(check string) "wrapper keeps polarity" "Session.ttl > 0" (Smt.Formula.to_string f)
  | None -> Alcotest.fail "translation failed");
  match Semantics.Translate.guard_condition env ~early_exit:true g with
  | Some f ->
      Alcotest.(check string) "early-exit negates" "Session.ttl <= 0" (Smt.Formula.to_string f)
  | None -> Alcotest.fail "translation failed"

let test_translate_scalar_copy_propagation () =
  let src =
    {|
class D {
  field remaining: int = 10;
  method put(sz: int) {
    var room: int = this.remaining;
    if (sz > room) {
      throw "quota";
    }
    store(sz);
  }
}
method store(x: int) { }
|}
  in
  let _, env, m = method_env src "put" in
  match Semantics.Translate.guard_condition env ~early_exit:true (guard_of m) with
  | Some f ->
      (* the local [room] is a copy of this.remaining and must normalize
         to the field path *)
      Alcotest.(check string) "copy propagated" "sz <= D.remaining" (Smt.Formula.to_string f)
  | None -> Alcotest.fail "translation failed"

let test_translate_field_chain_by_class () =
  let src =
    {|
class Inner { field size: int = 0; }
class Outer {
  field inner: Inner;
  method init() { this.inner = new Inner(); }
  method check() {
    if (this.inner.size > 0) {
      work();
    }
  }
}
method work() { }
|}
  in
  let _, env, m = method_env src "check" in
  match Semantics.Translate.guard_condition env ~early_exit:false (guard_of m) with
  | Some f ->
      (* x.f with x : Inner names the path by Inner's class *)
      Alcotest.(check string) "chain canonical" "Inner.size > 0" (Smt.Formula.to_string f)
  | None -> Alcotest.fail "translation failed"

let test_translate_opaque_builtin () =
  let _, env, _ = method_env src_session "act" in
  let e = Parser.expression "mapContains(this.tracker, sessionId)" in
  match Semantics.Translate.formula_of env e with
  | Some f ->
      Alcotest.(check string) "opaque boolean named canonically"
        "mapContains(P.tracker, sessionId) == true"
        (Smt.Formula.to_string f)
  | None -> Alcotest.fail "translation failed"

(* ------------------------------------------------------------------ *)
(* Rules and rulebooks                                                 *)
(* ------------------------------------------------------------------ *)

let sample_rule ?(in_method = Some "P.act") () =
  Semantics.Rule.make ~rule_id:"r1" ~description:"d" ~high_level:"h" ~origin:"o"
    (Semantics.Rule.State_guard
       {
         target = Semantics.Rule.Call_to { callee = "doWork"; in_method };
         condition = Smt.Formula.bvar "x";
       })

let test_rule_generalize () =
  let r = sample_rule () in
  let g = Semantics.Rule.generalize r in
  (match Semantics.Rule.target g with
  | Some (Semantics.Rule.Call_to { in_method = None; _ }) -> ()
  | _ -> Alcotest.fail "generalize must drop the method restriction");
  (* idempotent on already-general rules *)
  Alcotest.(check bool) "idempotent" true (Semantics.Rule.generalize g = g)

let test_lock_rule_generalize_and_broaden () =
  let r =
    Semantics.Rule.make ~rule_id:"l1" ~description:"d" ~high_level:"h" ~origin:"o"
      (Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_specific "C.f" })
  in
  (match (Semantics.Rule.generalize r).Semantics.Rule.body with
  | Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_blocking } -> ()
  | _ -> Alcotest.fail "lock generalization");
  match (Semantics.Rule.broaden_naively r).Semantics.Rule.body with
  | Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_all_calls } -> ()
  | _ -> Alcotest.fail "naive broadening"

let test_rulebook_dedup () =
  let book = Semantics.Rulebook.create ~system:"s" in
  Semantics.Rulebook.add book (sample_rule ());
  Semantics.Rulebook.add book (sample_rule ());
  Alcotest.(check int) "no duplicates" 1 (Semantics.Rulebook.size book)

let test_resolve_targets () =
  let p = Parser.program src_session in
  let targets =
    Semantics.Rulebook.resolve_targets p
      (Semantics.Rule.Call_to { callee = "doWork"; in_method = None })
  in
  Alcotest.(check int) "one call site" 1 (List.length targets);
  let qname, st = List.hd targets in
  Alcotest.(check string) "in act" "P.act" qname;
  let scoped =
    Semantics.Rulebook.resolve_targets p
      (Semantics.Rule.Call_to { callee = "doWork"; in_method = Some "Nowhere.else" })
  in
  Alcotest.(check int) "scoped to absent method" 0 (List.length scoped);
  let by_text =
    Semantics.Rulebook.resolve_targets p
      (Semantics.Rule.Stmt_text (Pretty.stmt_head_to_string st))
  in
  Alcotest.(check int) "text target resolves" 1 (List.length by_text)

(* ------------------------------------------------------------------ *)
(* The developer DSL                                                   *)
(* ------------------------------------------------------------------ *)

let dsl_text =
  {|# comment
rule a.b:
  because "why"
  when calling createNode
  require Session != null && Session.closing == false

rule c.d:
  when calling put in Store.save
  require sz <= Store.remaining

rule e.f:
  forbid blocking under lock

rule g.h:
  forbid blocking under lock in C.m
|}

let test_dsl_parse () =
  let rules = Semantics.Dsl.parse dsl_text in
  Alcotest.(check int) "four rules" 4 (List.length rules);
  let r1 = List.nth rules 0 in
  Alcotest.(check string) "id" "a.b" r1.Semantics.Rule.rule_id;
  Alcotest.(check string) "because" "why" r1.Semantics.Rule.high_level;
  (match Semantics.Rule.condition r1 with
  | Some c ->
      Alcotest.(check string) "condition"
        "(Session != null && Session.closing == false)"
        (Smt.Formula.to_string c)
  | None -> Alcotest.fail "no condition");
  match (List.nth rules 3).Semantics.Rule.body with
  | Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_specific "C.m" } -> ()
  | _ -> Alcotest.fail "scoped lock rule"

let test_dsl_roundtrip () =
  let rules = Semantics.Dsl.parse dsl_text in
  let printed = Semantics.Dsl.print_rules rules in
  Alcotest.(check (list string)) "print/parse round-trip"
    (List.map Semantics.Rule.to_string rules)
    (List.map Semantics.Rule.to_string (Semantics.Dsl.parse printed))

let test_dsl_errors () =
  let expect_error text frag =
    match Semantics.Dsl.parse text with
    | _ -> Alcotest.fail ("expected parse error for: " ^ text)
    | exception Semantics.Dsl.Parse_error (m, _) ->
        Alcotest.(check bool) (frag ^ " in " ^ m) true (Astring_contains.contains m frag)
  in
  expect_error "rule x:\n  require y == 1" "without a 'when'";
  expect_error "rule x:\n  when calling f" "without a 'require'";
  expect_error "rule x:\n  nonsense here" "unrecognized directive";
  expect_error "require y == 1" "outside a rule block";
  expect_error "rule x:\n  when calling f\n  require mapGet(a, b)" "predicate fragment"

let test_dsl_rule_enforces () =
  (* a hand-written rule behaves exactly like a mined one *)
  let rules =
    Semantics.Dsl.parse
      {|rule eph:
  when calling createEphemeralNode
  require Session != null && Session.closing == false|}
  in
  let c = List.hd Corpus.Zookeeper.cases in
  let report =
    Lisa.Checker.check_rule (Corpus.Case.program_at c 2) (List.hd rules)
  in
  Alcotest.(check bool) "violations found" true (report.Lisa.Checker.rep_violations <> []);
  Alcotest.(check bool) "sanity ok" true report.Lisa.Checker.rep_sanity_ok

let suite =
  [
    ( "semantics.translate",
      [
        Alcotest.test_case "observer inlining" `Quick test_translate_observer_inlining;
        Alcotest.test_case "class-canonical roots" `Quick test_translate_class_canonical_roots;
        Alcotest.test_case "guard polarity" `Quick test_translate_wrapper_guard_polarity;
        Alcotest.test_case "scalar copy propagation" `Quick test_translate_scalar_copy_propagation;
        Alcotest.test_case "field chains by class" `Quick test_translate_field_chain_by_class;
        Alcotest.test_case "opaque builtins" `Quick test_translate_opaque_builtin;
      ] );
    ( "semantics.rules",
      [
        Alcotest.test_case "generalize state guard" `Quick test_rule_generalize;
        Alcotest.test_case "generalize/broaden lock rule" `Quick
          test_lock_rule_generalize_and_broaden;
        Alcotest.test_case "rulebook dedup" `Quick test_rulebook_dedup;
        Alcotest.test_case "resolve targets" `Quick test_resolve_targets;
      ] );
    ( "semantics.dsl",
      [
        Alcotest.test_case "parse" `Quick test_dsl_parse;
        Alcotest.test_case "round-trip" `Quick test_dsl_roundtrip;
        Alcotest.test_case "errors" `Quick test_dsl_errors;
        Alcotest.test_case "hand-written rule enforces" `Quick test_dsl_rule_enforces;
      ] );
  ]
