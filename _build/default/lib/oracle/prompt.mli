(** Prompt construction — Listing 1 of the paper.

    The deterministic backend does not need the text, but building it
    keeps the interface identical to the paper's: a real-LLM client would
    consume exactly this prompt. *)

(** The instruction preamble (Listing 1, verbatim in structure). *)
val instructions : string

(** The full prompt for a ticket: instructions + the three inputs. *)
val build : Ticket.t -> string

(** Approximate token count (whitespace tokenization). *)
val token_estimate : string -> int
