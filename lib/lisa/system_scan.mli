(** Experiment E11 — whole-system enforcement: one rulebook per system
    (learned from every original incident), enforced on the assembled
    releases v1/v2/v3/v5.  The 4-system × 4-version sweep is a single
    {!Engine.Scheduler} run, so unchanged-region versions reuse cached
    reports and repeated path conditions hit the SMT verdict cache. *)

type version_row = {
  vr_version : int;
  vr_rules : int;
  vr_violating_rules : string list;  (** rule ids with findings *)
  vr_traces : int;
  vr_branches_total : int;
  vr_branches_recorded : int;
  vr_degraded : string list;  (** rule ids with degraded (lossy) reports *)
  vr_tiers : (string * string) list;
      (** witness-replay tier per violating rule id; empty unless the
          scan ran with triage enabled *)
}

type system_result = { sys_name : string; sys_rows : version_row list }

val learn_system_book :
  ?config:Pipeline.config ->
  ?registry:Corpus.Registry.t ->
  string ->
  Semantics.Rulebook.t

(** One version through the plain serial pipeline (no engine). *)
val scan_version :
  ?config:Pipeline.config ->
  ?registry:Corpus.Registry.t ->
  string ->
  Semantics.Rulebook.t ->
  int ->
  version_row

(** The whole scan as one engine run, with the engine's statistics.
    [registry] (default {!Corpus.Registry.builtin}) picks the corpus:
    systems and scan versions come from the registry value.  [triage]
    fills [vr_tiers] via witness-replay triage; absent by default,
    keeping the plain scan byte-identical. *)
val run_engine :
  ?config:Pipeline.config ->
  ?engine_config:Engine.Scheduler.config ->
  ?registry:Corpus.Registry.t ->
  ?triage:Triage.config ->
  unit ->
  system_result list * Engine.Stats.t

(** [run_engine] with the default engine, rows only. *)
val run :
  ?config:Pipeline.config ->
  ?registry:Corpus.Registry.t ->
  unit ->
  system_result list

val print : system_result list -> string

val print_with_stats : system_result list * Engine.Stats.t -> string
