(** The enforcement engine: job-scheduled, parallel, incremental, cached
    rulebook enforcement.

    One [enforce] call turns a (program version, rulebook) pair into one
    job per rule and drains the job queue through four layers, cheapest
    first:

    1. {e incremental pre-pass} — if this engine enforced a previous
       version, diff the two ({!Incremental}) and reuse the previous
       report for every rule whose region is untouched (no prepare, no
       fingerprint, no execution);
    2. {e report cache} — remaining rules run {!Checker.prepare} (cheap
       statics) and look up their {!Fingerprint.job_key}; a hit returns
       the memoized report;
    3. {e worker pool} — true misses become prioritized jobs executed on
       {!Pool} ([jobs = 1] is bit-for-bit the serial semantics);
    4. {e SMT verdict cache} — inside every executed job, path-condition
       judgments go through {!Smt.Memo}.

    Reports come back in rulebook order regardless of pool width, and
    every layer can be disabled independently (the cold-serial
    configuration reproduces the historic [Checker.check_book]
    behaviour exactly).

    Telemetry: every phase runs under a [Telemetry.Trace] span
    ([engine.enforce] > [engine.incremental] / [engine.prepare] /
    [engine.execute] > [engine.job]), counts accumulate through the
    {!Stats} recorder into [Telemetry.Metrics], and all wall time is
    read from [Telemetry.Clock]. *)

open Minilang
module Trace = Telemetry.Trace
module Clock = Telemetry.Clock

type config = {
  jobs : int;  (** worker domains; 1 = serial on the calling domain *)
  report_cache : bool;  (** layer 2: fingerprint-keyed report memo *)
  smt_cache : bool;  (** layer 4: {!Smt.Memo} verdict cache *)
  incremental : bool;  (** layer 1: diff-based cross-version reuse *)
  checker : Checker.config;
  max_retries : int;
      (** failed jobs are re-run up to this many times before quarantine *)
  retry_backoff_ms : int;
      (** base backoff before a retry round, doubled per attempt and
          capped at 8x; 0 = retry immediately (what tests use) *)
  job_times_cap : int;
      (** ring capacity for per-job wall times kept in {!Stats} *)
}

let default_config =
  {
    jobs = 1;
    report_cache = true;
    smt_cache = true;
    incremental = true;
    checker = Checker.default_config;
    max_retries = 2;
    retry_backoff_ms = 5;
    job_times_cap = 1024;
  }

(** The cold, serial configuration: every layer off — including the
    checker's path-condition trie, so each trace is solved
    independently.  Reproduces the historic one-shot checker exactly;
    the benchmark's baseline (its report equality against the default
    mode doubles as the trie's byte-identity check). *)
let cold_config =
  {
    default_config with
    report_cache = false;
    smt_cache = false;
    incremental = false;
    checker = { Checker.default_config with Checker.trie = false };
  }

(* what the engine remembers about the last version it enforced *)
type memory = {
  mem_program : Ast.program;
  mem_fp : string;
  mem_entries : (string * (string list * Checker.rule_report)) list;
      (** rule id -> (region at last run, report) *)
}

type t = {
  config : config;
  recorder : Stats.recorder;
  reports : (string, Checker.rule_report) Cache.t;
  mutable last : memory option;
}

let create ?(config = default_config) () : t =
  {
    config;
    recorder = Stats.recorder ~job_times_cap:config.job_times_cap ();
    reports = Cache.create ~name:"reports" ();
    last = None;
  }

let config t = t.config

let stats t = Stats.snapshot t.recorder

let report_cache_size t = Cache.size t.reports

(** Drop all cached state (reports and version memory). *)
let invalidate t =
  Cache.reset t.reports;
  t.last <- None

let no_change_summary =
  { Incremental.ch_methods = []; Incremental.ch_stmt_texts = [] }

(* capped exponential backoff: base, 2*base, 4*base, ... <= 8*base *)
let backoff_ms (cfg : config) ~(attempt : int) : int =
  if cfg.retry_backoff_ms <= 0 then 0
  else
    let factor = 1 lsl min 3 (max 0 (attempt - 1)) in
    min (cfg.retry_backoff_ms * factor) (8 * cfg.retry_backoff_ms)

(* trace-only counter snapshots of the two cache tiers *)
let trace_cache_counters t =
  if Trace.enabled () then begin
    let s = Stats.snapshot t.recorder in
    Trace.counter "engine.report_cache"
      [
        ("hits", float_of_int s.Stats.report_hits);
        ("misses", float_of_int s.Stats.report_misses);
        ("entries", float_of_int (Cache.size t.reports));
      ];
    Trace.counter "engine.smt_cache"
      [
        ("hits", float_of_int s.Stats.smt_hits);
        ("misses", float_of_int s.Stats.smt_misses);
        ("solver_calls", float_of_int s.Stats.solver_calls);
      ];
    Trace.counter "engine.intern"
      [
        ("hits", float_of_int s.Stats.intern_hits);
        ("misses", float_of_int s.Stats.intern_misses);
        ("size", float_of_int s.Stats.intern_size);
      ];
    (* the incremental solver core's counters *)
    Trace.counter "smt.assume.push"
      [ ("count", float_of_int s.Stats.assume_pushes) ];
    Trace.counter "smt.assume.pop"
      [ ("count", float_of_int s.Stats.assume_pops) ];
    Trace.counter "smt.propagations"
      [ ("count", float_of_int s.Stats.propagations) ];
    Trace.counter "smt.learned"
      [ ("count", float_of_int s.Stats.learned_conflicts) ];
    (* contention-free hot-path counters: shard-lock waits, zero-lock
       front-cache hits, batched clause publications *)
    Trace.counter "core.shard.contention"
      [ ("count", float_of_int s.Stats.shard_contention) ];
    Trace.counter "smt.memo.local_hits"
      [ ("count", float_of_int s.Stats.memo_local_hits) ];
    Trace.counter "smt.learned.batched"
      [ ("count", float_of_int s.Stats.learned_batched) ];
    Trace.counter "smt.trie.nodes"
      [ ("count", float_of_int s.Stats.trie_nodes) ];
    Trace.counter "smt.trie.shared"
      [ ("count", float_of_int s.Stats.trie_shared) ];
    (* pre-solver fast-path ladder: abstract-domain refutations, root
       BCP conflicts, trie-subtree subsumptions, total searches saved *)
    Trace.counter "smt.fastpath.interval"
      [ ("count", float_of_int s.Stats.fastpath_interval) ];
    Trace.counter "smt.fastpath.bcp"
      [ ("count", float_of_int s.Stats.fastpath_bcp) ];
    Trace.counter "smt.fastpath.subsumed"
      [ ("count", float_of_int s.Stats.fastpath_subsumed) ];
    Trace.counter "smt.fastpath.saved"
      [ ("count", float_of_int s.Stats.fastpath_saved) ];
    Trace.counter "smt.memo.local_evict"
      [ ("count", float_of_int s.Stats.memo_local_evict) ]
  end

(** Enforce a rulebook against a program version through the engine. *)
let enforce (t : t) (p : Ast.program) (book : Semantics.Rulebook.t) :
    Checker.rule_report list =
  Trace.with_span ~cat:"engine" "engine.enforce" @@ fun () ->
  let cfg = t.config in
  let t0 = Clock.now () in
  let smt_hits0 = Smt.Memo.hits () and smt_misses0 = Smt.Memo.misses () in
  let intern_hits0 = Smt.Formula.intern_hits ()
  and intern_misses0 = Smt.Formula.intern_misses () in
  let solver0 = Smt.Solver.solve_count () in
  let push0 = Smt.Solver.assume_push_count ()
  and pop0 = Smt.Solver.assume_pop_count ()
  and propagations0 = Smt.Solver.propagation_count ()
  and learned0 = Smt.Solver.learned_count () in
  let contention0 = Core.Hc.contention_total ()
  and local_hits0 = Smt.Memo.local_hits ()
  and batched0 = Smt.Solver.learned_batch_count () in
  let trie_nodes0 = Smt.Pctrie.nodes_total ()
  and trie_shared0 = Smt.Pctrie.shared_total () in
  let fp_interval0 = Smt.Solver.fastpath_interval_count ()
  and fp_bcp0 = Smt.Solver.fastpath_bcp_count ()
  and fp_subsumed0 = Smt.Solver.fastpath_subsumed_count ()
  and fp_saved0 = Smt.Solver.fastpath_saved_count ()
  and local_evict0 = Smt.Memo.local_evictions () in
  let memo_was = Smt.Memo.enabled () in
  Smt.Memo.set_enabled cfg.smt_cache;
  Fun.protect ~finally:(fun () -> Smt.Memo.set_enabled memo_was) @@ fun () ->
  let rules = Semantics.Rulebook.rules book in
  let program_fp = Fingerprint.program p in
  (* layer 1: incremental pre-pass against the previous version *)
  let reused, fresh =
    Trace.with_span ~cat:"engine" "engine.incremental" @@ fun () ->
    match t.last with
    | Some mem when cfg.incremental ->
        let changes =
          if mem.mem_fp = program_fp then no_change_summary
          else Incremental.summarize ~prev:mem.mem_program ~cur:p
        in
        List.partition_map
          (fun (rule : Semantics.Rule.t) ->
            match List.assoc_opt rule.Semantics.Rule.rule_id mem.mem_entries with
            | Some (region, report)
              when not (Incremental.rule_affected changes ~region rule) ->
                Either.Left (rule.Semantics.Rule.rule_id, (region, report))
            | _ -> Either.Right rule)
          rules
    | _ -> ([], rules)
  in
  Stats.bump ~by:(List.length reused) t.recorder Stats.Incremental_reuses;
  (* layer 2: prepare the rest and consult the report cache *)
  let prepared_rules =
    Trace.with_span ~cat:"engine" "engine.prepare" @@ fun () ->
    let graph = Analysis.Callgraph.build p in
    let methods = Fingerprint.methods p in
    List.map
      (fun rule ->
        let pr = Checker.prepare ~config:cfg.checker ~graph p rule in
        let key = Fingerprint.job_key ~config:cfg.checker ~graph ~methods pr in
        let region = Fingerprint.region graph pr in
        (Job.make ~program_fp ~key pr, region))
      fresh
  in
  let cached, to_run =
    List.partition_map
      (fun ((job : Job.t), region) ->
        match if cfg.report_cache then Cache.find t.reports job.Job.key else None with
        | Some report -> Either.Left (job.Job.rule_id, (region, report))
        | None -> Either.Right (job, region))
      prepared_rules
  in
  Stats.bump ~by:(List.length cached) t.recorder Stats.Report_hits;
  Stats.bump ~by:(List.length to_run) t.recorder Stats.Report_misses;
  (* layer 3: execute the misses on the worker pool, expensive first.
     The pool collects per-slot results instead of re-raising: failed
     jobs are retried with capped deterministic backoff, and jobs still
     failing after [max_retries] rounds are quarantined behind a
     placeholder report — one crashing rule never takes down the run. *)
  let scheduled = Array.of_list (Job.schedule (List.map fst to_run)) in
  let run_job (job : Job.t) =
    Trace.with_span ~cat:"engine" ~args:[ ("rule", job.Job.rule_id) ]
      "engine.job"
    @@ fun () ->
    let j0 = Clock.now () in
    let report = Checker.execute ~config:cfg.checker p job.Job.prepared in
    (job, report, Clock.now () -. j0)
  in
  let results =
    Trace.with_span ~cat:"engine"
      ~args:[ ("scheduled", string_of_int (Array.length scheduled)) ]
      "engine.execute"
    @@ fun () ->
    let results =
      Pool.map_results ~init:Domain_ctx.enter ~finish:Domain_ctx.leave
        ~jobs:cfg.jobs run_job scheduled
    in
    let rec retry_failures attempt =
      let failed = Pool.failures results in
      if failed <> [] && attempt <= cfg.max_retries then begin
        let ms = backoff_ms cfg ~attempt in
        List.iter
          (fun (slot, e) ->
            Resilience.Events.emit
              (Resilience.Events.Job_retry
                 {
                   job = scheduled.(slot).Job.rule_id;
                   attempt;
                   backoff_ms = ms;
                   reason = Printexc.to_string e;
                 }))
          failed;
        Stats.bump ~by:(List.length failed) t.recorder Stats.Retries;
        if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.);
        let slots = Array.of_list (List.map fst failed) in
        let rerun =
          Pool.map_results ~init:Domain_ctx.enter ~finish:Domain_ctx.leave
            ~jobs:cfg.jobs
            (fun slot -> run_job scheduled.(slot))
            slots
        in
        Array.iteri (fun k r -> results.(slots.(k)) <- r) rerun;
        retry_failures (attempt + 1)
      end
    in
    retry_failures 1;
    results
  in
  let executed =
    Array.to_list results
    |> List.mapi (fun slot result ->
           match result with
           | Ok v -> v
           | Error e ->
               let job = scheduled.(slot) in
               let reason = Printexc.to_string e in
               Resilience.Events.emit
                 (Resilience.Events.Job_quarantined
                    {
                      job = job.Job.rule_id;
                      attempts = cfg.max_retries + 1;
                      reason;
                    });
               Stats.quarantine t.recorder job.Job.rule_id;
               let report =
                 Checker.quarantined_report
                   job.Job.prepared.Checker.prep_rule ~reason
               in
               (job, report, 0.))
  in
  let region_of_job (job : Job.t) =
    match
      List.find_opt (fun ((j : Job.t), _) -> j.Job.job_id = job.Job.job_id) to_run
    with
    | Some (_, region) -> region
    | None -> []
  in
  let ran =
    List.map
      (fun ((job : Job.t), report, wall) ->
        (* degraded reports never enter the cache: they describe a bad
           moment (open breaker, exhausted budget), not the program, and
           must not poison later healthy enforcements *)
        if cfg.report_cache && not (Checker.is_degraded report) then
          Cache.add t.reports job.Job.key report;
        if Checker.is_degraded report then
          Stats.bump t.recorder Stats.Degraded_jobs;
        Stats.bump t.recorder Stats.Jobs_run;
        Stats.add_job_time t.recorder
          {
            Stats.jt_job_id = job.Job.job_id;
            Stats.jt_rule_id = job.Job.rule_id;
            Stats.jt_wall_s = wall;
          };
        (job.Job.rule_id, (region_of_job job, report)))
      executed
  in
  (* assemble in rulebook order and refresh the version memory *)
  let entries = reused @ cached @ ran in
  let reports_in_order =
    List.map
      (fun (rule : Semantics.Rule.t) ->
        match List.assoc_opt rule.Semantics.Rule.rule_id entries with
        | Some (_, report) -> report
        | None -> assert false (* every rule fell into exactly one layer *))
      rules
  in
  (* degraded reports are also kept out of the incremental memory: the
     next enforcement must re-run those rules, not reuse their gaps *)
  let durable_entries =
    List.filter
      (fun (_, (_, report)) -> not (Checker.is_degraded report))
      entries
  in
  t.last <-
    Some { mem_program = p; mem_fp = program_fp; mem_entries = durable_entries };
  (* bookkeeping *)
  Stats.bump t.recorder Stats.Enforcements;
  Stats.bump ~by:(Smt.Memo.hits () - smt_hits0) t.recorder Stats.Smt_hits;
  Stats.bump ~by:(Smt.Memo.misses () - smt_misses0) t.recorder Stats.Smt_misses;
  Stats.bump
    ~by:(Smt.Formula.intern_hits () - intern_hits0)
    t.recorder Stats.Intern_hits;
  Stats.bump
    ~by:(Smt.Formula.intern_misses () - intern_misses0)
    t.recorder Stats.Intern_misses;
  Stats.bump
    ~by:(Smt.Solver.solve_count () - solver0)
    t.recorder Stats.Solver_calls;
  Stats.bump
    ~by:(Smt.Solver.assume_push_count () - push0)
    t.recorder Stats.Assume_pushes;
  Stats.bump
    ~by:(Smt.Solver.assume_pop_count () - pop0)
    t.recorder Stats.Assume_pops;
  Stats.bump
    ~by:(Smt.Solver.propagation_count () - propagations0)
    t.recorder Stats.Propagations;
  Stats.bump
    ~by:(Smt.Solver.learned_count () - learned0)
    t.recorder Stats.Learned_conflicts;
  Stats.bump
    ~by:(Core.Hc.contention_total () - contention0)
    t.recorder Stats.Shard_contention;
  Stats.bump
    ~by:(Smt.Memo.local_hits () - local_hits0)
    t.recorder Stats.Memo_local_hits;
  Stats.bump
    ~by:(Smt.Solver.learned_batch_count () - batched0)
    t.recorder Stats.Learned_batched;
  Stats.bump
    ~by:(Smt.Pctrie.nodes_total () - trie_nodes0)
    t.recorder Stats.Trie_nodes;
  Stats.bump
    ~by:(Smt.Pctrie.shared_total () - trie_shared0)
    t.recorder Stats.Trie_shared;
  Stats.bump
    ~by:(Smt.Solver.fastpath_interval_count () - fp_interval0)
    t.recorder Stats.Fastpath_interval;
  Stats.bump
    ~by:(Smt.Solver.fastpath_bcp_count () - fp_bcp0)
    t.recorder Stats.Fastpath_bcp;
  Stats.bump
    ~by:(Smt.Solver.fastpath_subsumed_count () - fp_subsumed0)
    t.recorder Stats.Fastpath_subsumed;
  Stats.bump
    ~by:(Smt.Solver.fastpath_saved_count () - fp_saved0)
    t.recorder Stats.Fastpath_saved;
  Stats.bump
    ~by:(Smt.Memo.local_evictions () - local_evict0)
    t.recorder Stats.Memo_local_evict;
  Stats.add_wall t.recorder (Clock.now () -. t0);
  trace_cache_counters t;
  reports_in_order

(** The reports that carry violations. *)
let findings (reports : Checker.rule_report list) : Checker.rule_report list =
  List.filter Checker.has_violations reports

(** Violating rule ids of an enforcement, in rulebook order — the
    stable summary benchmarks and tests compare across configurations. *)
let finding_ids (reports : Checker.rule_report list) : string list =
  List.map
    (fun (r : Checker.rule_report) -> r.Checker.rep_rule.Semantics.Rule.rule_id)
    (findings reports)

(** Rule ids whose reports are degraded (lost evidence), in rulebook
    order.  A clean run returns []. *)
let degraded_ids (reports : Checker.rule_report list) : string list =
  List.filter_map
    (fun (r : Checker.rule_report) ->
      if Checker.is_degraded r then
        Some r.Checker.rep_rule.Semantics.Rule.rule_id
      else None)
    reports
