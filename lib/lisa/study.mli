(** Experiment E1 — the §2.1 regression study (Figure 1). *)

type system_row = {
  sr_system : string;
  sr_cases : int;
  sr_bugs : int;
  sr_guard_cases : int;
  sr_lock_cases : int;
  sr_tests : int;  (** test functions in the latest assembled release *)
}

type t = {
  rows : system_row list;
  total_cases : int;
  total_bugs : int;
  old_semantics_bugs : int;
  old_semantics_share : float;
  mean_recurrence_years : float;
  ephemeral_histogram : (int * int) list;
  ephemeral_total : int;
  avg_test_files_paper : int;
}

val run : ?registry:Corpus.Registry.t -> unit -> t

val print : t -> string
