(** Markdown rendering of enforcement results, the way a CI job surfaces
    them: a PASS/BLOCK verdict, one section per rule, verified/violating
    traces with counterexamples, lock findings, and the uncovered-path
    list that asks for a developer verdict. *)

val render_rule_report : Checker.rule_report -> string

val render : ?title:string -> Checker.rule_report list -> string
