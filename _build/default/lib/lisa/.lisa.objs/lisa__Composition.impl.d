lib/lisa/composition.ml: Buffer Corpus Fmt List Mc Minilang Pipeline Semantics
