(** Global SMT verdict cache wrapping {!Solver}.

    Keyed by the interned id of the simplified formula: formulas are
    hash-consed, so equal keys denote equal formulas and reusing a
    verdict is always sound — and the hit path allocates no rendering.

    The store is two-level: each domain keeps a bounded front cache in
    [Domain.DLS] (a warm hit takes zero locks), spilling to a
    process-global store sharded 16 ways by key, so worker domains only
    contend on a shard mutex for cold formulas that hash alike.
    Exactly one hit or miss is recorded per enabled query
    ([hits () = global hits + local hits]), so counter totals — and the
    engine statistics derived from them — match the historic
    single-mutex design at any jobs count.  Disabled by default — when
    disabled every call passes straight through to {!Solver}. *)

(** Turn the cache on or off (default: off). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Like {!Solver.solve}, consulting the cache when enabled.  Verdicts
    are deterministic functions of the formula, so cached and uncached
    runs agree (see the qcheck property in [test/test_engine.ml]). *)
val solve : Formula.t -> Solver.verdict

(** Cached complement check; contract of {!Solver.check_trace}. *)
val check_trace : pc:Formula.t -> checker:Formula.t -> Solver.trace_check

(** Cached direct check; contract of {!Solver.check_trace_direct}. *)
val check_trace_direct :
  pc:Formula.t -> checker:Formula.t -> Solver.trace_check

(** {1 Context-aware (trie-driven) checks}

    Same cache keys and verdicts as the plain checks — the assumption
    context only makes cache misses cheaper by reusing the pc prefix the
    trie walk has already asserted.  The caller guarantees the context's
    assumptions conjoin to [pc].  [Unknown] is never cached, exactly as
    for the plain entry points. *)

val check_trace_in :
  Solver.context -> pc:Formula.t -> checker:Formula.t -> Solver.trace_check

val check_trace_direct_in :
  Solver.context -> pc:Formula.t -> checker:Formula.t -> Solver.trace_check

(** {1 Snapshot / restore}

    The daemon ([lib/serve]) persists the verdict cache across restarts.
    Entries expose the simplified formula alongside its verdict so the
    persistence layer can convert to {!Wire} forms — interned values are
    process-local and must be rebuilt through the smart constructors on
    load. *)

(** Every cached (simplified formula, verdict) pair, unordered. *)
val entries : unit -> (Formula.t * Solver.verdict) list

(** Seed the cache from re-interned entries; skips [Unknown] verdicts
    and keys already present, never evicts.  Entries are grouped by
    shard so each shard lock is taken once per batch, not once per
    entry.  Returns entries added. *)
val restore : (Formula.t * Solver.verdict) list -> int

(** {1 Counters} *)

val hits : unit -> int

val misses : unit -> int

(** Queries answered by the calling side's domain-local front cache
    (zero-lock hits); a subset of {!hits}.  Surfaced by the engine as
    the [smt.memo.local_hits] telemetry counter. *)
val local_hits : unit -> int

(** Domain-local front-cache resets forced by the per-domain cap —
    eviction pressure.  Surfaced as the [smt.memo.local_evict]
    telemetry counter and in [Stats.to_string] behind the
    memo-pressure flag. *)
val local_evictions : unit -> int

(** Number of formulas currently cached in the global store. *)
val size : unit -> int

(** Global store occupancy in [0, 1]: {!size} over the total capacity
    across all shards.  Pinned near 1.0 means the store is
    insert-saturated for the current workload. *)
val fill_ratio : unit -> float

(** Clear the global store, zero the counters, and lazily invalidate
    every domain's front cache (epoch bump — a domain drops its local
    table on its next query). *)
val reset : unit -> unit

(** Eagerly create (or epoch-sync) the calling domain's front cache;
    the engine's worker pool calls this at domain start. *)
val init_local : unit -> unit
