examples/ci_gate.mli:
