lib/diffing/line_diff.ml: Array Buffer Fmt List Printf String
