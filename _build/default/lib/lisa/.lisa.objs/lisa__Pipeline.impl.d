lib/lisa/pipeline.ml: Checker Fmt List Log Minilang Oracle Semantics String
