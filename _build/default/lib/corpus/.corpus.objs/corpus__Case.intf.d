lib/corpus/case.mli: Minilang Oracle
