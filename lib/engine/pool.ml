(** Domain-based worker pool (OCaml 5, no external dependencies).

    [map_results ~jobs f items] applies [f] to every item and returns a
    per-slot [('b, exn) result] array in input order — {e every} failed
    job keeps its own exception in its own slot, so a caller can report
    (and retry) each failure instead of losing all but the first.  With
    [jobs <= 1] it runs serially on the calling domain — bit-for-bit
    the serial semantics, which is what keeps tier-1 tests stable.
    With [jobs > 1] it spawns up to [jobs] domains that drain a shared
    atomic index; because results land in their input slot, the output
    is identical for every pool width as long as [f] is deterministic
    per item (the checker's dynamic phase is: it shares no mutable
    state apart from the mutex-protected caches, whose hits return the
    same verdicts the misses compute).

    Workers carry a domain-local cache lifecycle: [init] runs on each
    worker domain before it claims its first item (warming
    [Domain.DLS] state — the SMT memo front cache), and [finish] runs
    after its last item, before the domain is joined (draining state
    that must not be stranded — the solver's pending learned clauses).
    The serial path runs the same hooks on the calling domain, so
    [jobs <= 1] stays bit-for-bit identical while exercising the same
    lifecycle.

    A worker exception never kills the pool: the surviving workers
    finish the remaining items, and the failure stays in its slot.
    [map] is the historic raising wrapper (first error by input index,
    so deterministically the same one at any pool width). *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let noop () = ()

let map_results ?(init = noop) ?(finish = noop) ~(jobs : int) (f : 'a -> 'b)
    (items : 'a array) : ('b, exn) result array =
  let n = Array.length items in
  let apply x = match f x with v -> Ok v | exception e -> Error e in
  if jobs <= 1 || n <= 1 then begin
    init ();
    let results = Array.map apply items in
    finish ();
    results
  end
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      init ();
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (apply items.(i));
          loop ()
        end
      in
      loop ();
      finish ()
    in
    let domains =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index below [n] was claimed *))
      results
  end

(** Indexed failures of a [map_results] run, in slot order. *)
let failures (results : ('b, exn) result array) : (int * exn) list =
  let acc = ref [] in
  Array.iteri
    (fun i r -> match r with Error e -> acc := (i, e) :: !acc | Ok _ -> ())
    results;
  List.rev !acc

let map ?init ?finish ~(jobs : int) (f : 'a -> 'b) (items : 'a array) :
    'b array =
  let results = map_results ?init ?finish ~jobs f items in
  Array.map (function Ok v -> v | Error e -> raise e) results

(** [map] over a list. *)
let map_list ?init ?finish ~(jobs : int) (f : 'a -> 'b) (items : 'a list) :
    'b list =
  Array.to_list (map ?init ?finish ~jobs f (Array.of_list items))
