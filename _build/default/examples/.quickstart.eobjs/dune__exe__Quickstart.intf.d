examples/quickstart.mli:
