(** Interprocedural call graph (the Soot role of the paper's §3.2).

    Method calls resolve by simple name to every class declaring it (a
    CHA-style over-approximation; MiniJava has no inheritance). *)

type node = string  (** qualified method name, e.g. ["DataTree.createNode"] *)

type t = {
  program : Minilang.Ast.program;
  nodes : node list;
  edges : (node * node) list;  (** caller, callee *)
}

(** Resolve a simple callee name to qualified method names. *)
val resolve : Minilang.Ast.program -> string -> node list

val build : Minilang.Ast.program -> t

val callees : t -> node -> node list

val callers : t -> node -> node list

(** Entry points: the program's top-level functions. *)
val entries : t -> node list

(** Methods reachable from a node (inclusive). *)
val reachable_from : t -> node -> node list

(** All acyclic call chains from any entry function to [target], entry
    first, both ends inclusive. *)
val call_chains : ?max_paths:int -> t -> target:node -> node list list

(** Transitive closure of a predicate: [may g base n] holds when [n] or
    anything reachable from it satisfies [base]. *)
val may : t -> (node -> bool) -> node -> bool

val to_dot : t -> string
