(** Abstract syntax of MiniJava.

    Every statement carries a unique statement id ([sid]) assigned by the
    parser.  Statement ids are the anchor for everything downstream: diffs
    map ticket patches to sids, low-level semantics name a *target
    statement* by sid (or by matching its printed text), and the concolic
    engine records path conditions whenever execution reaches a target sid. *)

type typ =
  | T_int
  | T_bool
  | T_str
  | T_ref of string  (** reference to an instance of the named class *)
  | T_map
  | T_list
  | T_void
  | T_any  (** dynamically-typed slot; used by heterogeneous containers *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg

type expr = { e : expr_kind; eloc : Loc.t }

and expr_kind =
  | Int_lit of int
  | Bool_lit of bool
  | Str_lit of string
  | Null_lit
  | Var of string
  | This
  | Field of expr * string  (** [obj.field] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** free function or builtin call *)
  | Method_call of expr * string * expr list  (** [obj.m(args)] *)
  | New of string * expr list  (** [new C(args)]; runs [init] if defined *)

type lvalue = Lv_var of string | Lv_field of expr * string

type stmt = { s : stmt_kind; sid : int; sloc : Loc.t }

and stmt_kind =
  | Decl of string * typ * expr option
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Return of expr option
  | Throw of expr
  | Try of block * string * block  (** [try b catch (x) handler] *)
  | Sync of expr * block  (** [synchronized (obj) { ... }] *)
  | Expr of expr
  | Assert of expr * string
  | Break
  | Continue

and block = stmt list

type method_decl = {
  m_name : string;
  m_params : (string * typ) list;
  m_ret : typ;
  m_body : block;
  m_loc : Loc.t;
}

type field_decl = { f_name : string; f_typ : typ; f_init : expr option; f_loc : Loc.t }

type class_decl = {
  c_name : string;
  c_fields : field_decl list;
  c_methods : method_decl list;
  c_loc : Loc.t;
}

type program = {
  p_classes : class_decl list;
  p_funcs : method_decl list;  (** top-level functions, incl. [test_*] *)
}

(* ------------------------------------------------------------------ *)
(* Constructors and small helpers                                      *)
(* ------------------------------------------------------------------ *)

let mk_expr ?(loc = Loc.dummy) e = { e; eloc = loc }

let mk_stmt ~sid ?(loc = Loc.dummy) s = { s; sid; sloc = loc }

let typ_to_string = function
  | T_int -> "int"
  | T_bool -> "bool"
  | T_str -> "str"
  | T_ref c -> c
  | T_map -> "map"
  | T_list -> "list"
  | T_void -> "void"
  | T_any -> "any"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let unop_to_string = function Not -> "!" | Neg -> "-"

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

(** [iter_stmts f block] applies [f] to every statement in [block],
    recursing into nested blocks, in source order. *)
let rec iter_stmts f (b : block) = List.iter (iter_stmt f) b

and iter_stmt f st =
  f st;
  match st.s with
  | If (_, b1, b2) ->
      iter_stmts f b1;
      iter_stmts f b2
  | While (_, b) -> iter_stmts f b
  | Try (b, _, h) ->
      iter_stmts f b;
      iter_stmts f h
  | Sync (_, b) -> iter_stmts f b
  | Decl _ | Assign _ | Return _ | Throw _ | Expr _ | Assert _ | Break | Continue -> ()

(** All statements of a method body, nested included, in source order. *)
let stmts_of_method (m : method_decl) : stmt list =
  let acc = ref [] in
  iter_stmts (fun st -> acc := st :: !acc) m.m_body;
  List.rev !acc

let methods_of_program (p : program) : (string option * method_decl) list =
  List.map (fun f -> (None, f)) p.p_funcs
  @ List.concat_map
      (fun c -> List.map (fun m -> (Some c.c_name, m)) c.c_methods)
      p.p_classes

(** Fully-qualified method name, ["Class.meth"] or just ["fn"]. *)
let qualified_name cls m =
  match cls with Some c -> c ^ "." ^ m.m_name | None -> m.m_name

(** [iter_exprs f e] applies [f] to [e] and every sub-expression. *)
let rec iter_exprs f (e : expr) =
  f e;
  match e.e with
  | Int_lit _ | Bool_lit _ | Str_lit _ | Null_lit | Var _ | This -> ()
  | Field (o, _) -> iter_exprs f o
  | Binop (_, a, b) ->
      iter_exprs f a;
      iter_exprs f b
  | Unop (_, a) -> iter_exprs f a
  | Call (_, args) -> List.iter (iter_exprs f) args
  | Method_call (o, _, args) ->
      iter_exprs f o;
      List.iter (iter_exprs f) args
  | New (_, args) -> List.iter (iter_exprs f) args

(** Expressions appearing directly in a statement head (not nested blocks). *)
let exprs_of_stmt (st : stmt) : expr list =
  match st.s with
  | Decl (_, _, Some e) -> [ e ]
  | Decl (_, _, None) -> []
  | Assign (Lv_var _, e) -> [ e ]
  | Assign (Lv_field (o, _), e) -> [ o; e ]
  | If (c, _, _) -> [ c ]
  | While (c, _) -> [ c ]
  | Return (Some e) -> [ e ]
  | Return None -> []
  | Throw e -> [ e ]
  | Try _ -> []
  | Sync (o, _) -> [ o ]
  | Expr e -> [ e ]
  | Assert (e, _) -> [ e ]
  | Break | Continue -> []

(** Names of functions/methods called anywhere inside an expression. *)
let callees_of_expr (e : expr) : string list =
  let acc = ref [] in
  iter_exprs
    (fun e ->
      match e.e with
      | Call (name, _) -> acc := name :: !acc
      | Method_call (_, name, _) -> acc := name :: !acc
      | New (cls, _) -> acc := (cls ^ ".init") :: !acc
      | Int_lit _ | Bool_lit _ | Str_lit _ | Null_lit | Var _ | This | Field _
      | Binop _ | Unop _ ->
          ())
    e;
  List.rev !acc

let callees_of_stmt (st : stmt) : string list =
  List.concat_map callees_of_expr (exprs_of_stmt st)

(** Find a statement by sid anywhere in the program. *)
let find_stmt (p : program) (sid : int) : stmt option =
  let found = ref None in
  let check st = if st.sid = sid && !found = None then found := Some st in
  List.iter (fun (_, m) -> iter_stmts check m.m_body) (methods_of_program p);
  !found

(** The method (and enclosing class, if any) that contains statement [sid]. *)
let enclosing_method (p : program) (sid : int) : (string option * method_decl) option
    =
  let result = ref None in
  List.iter
    (fun (cls, m) ->
      iter_stmts (fun st -> if st.sid = sid && !result = None then result := Some (cls, m)) m.m_body)
    (methods_of_program p);
  !result

let find_class (p : program) name = List.find_opt (fun c -> c.c_name = name) p.p_classes

let find_func (p : program) name = List.find_opt (fun f -> f.m_name = name) p.p_funcs

let find_method_in_class (c : class_decl) name =
  List.find_opt (fun m -> m.m_name = name) c.c_methods

(** All methods of the program whose simple name is [name]. *)
let methods_named (p : program) name : (string option * method_decl) list =
  List.filter (fun (_, m) -> m.m_name = name) (methods_of_program p)
