(** Static lock-scope analysis: which statements may execute while holding
    a monitor, and do any of them perform blocking I/O?

    This is the static half of the paper's Figure 6 rule family ("no
    blocking I/O within synchronized blocks", ZK-2201 / ZK-3531).  The
    analysis is a may-analysis over the call graph:

    1. a method *may block* if it (or anything it may call) invokes a
       blocking builtin ({!Minilang.Builtins.effect_class});
    2. a violation site is either a blocking builtin call lexically inside
       a [synchronized] block, or a call, inside a [synchronized] block,
       to a method that may block. *)

open Minilang

type violation = {
  v_method : string;  (** method containing the synchronized block *)
  v_sync_sid : int;  (** the synchronized statement *)
  v_sid : int;  (** the offending statement inside the block *)
  v_op : string;  (** blocking builtin, or the callee that may block *)
  v_direct : bool;  (** true if the blocking builtin is called lexically *)
}

let blocking_builtins_in_stmt (st : Ast.stmt) : string list =
  List.filter Builtins.is_blocking (Ast.callees_of_stmt st)

(* statements (with their sids) lexically under any Sync in a block,
   paired with the sid of the innermost enclosing Sync *)
let rec sync_scoped (b : Ast.block) (enclosing : int option) :
    (Ast.stmt * int) list =
  List.concat_map (fun st -> sync_scoped_stmt st enclosing) b

and sync_scoped_stmt (st : Ast.stmt) (enclosing : int option) : (Ast.stmt * int) list
    =
  let self = match enclosing with Some sync -> [ (st, sync) ] | None -> [] in
  match st.Ast.s with
  | Ast.Sync (_, body) -> self @ sync_scoped body (Some st.Ast.sid)
  | Ast.If (_, b1, b2) -> self @ sync_scoped b1 enclosing @ sync_scoped b2 enclosing
  | Ast.While (_, body) -> self @ sync_scoped body enclosing
  | Ast.Try (body, _, h) -> self @ sync_scoped body enclosing @ sync_scoped h enclosing
  | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Throw _ | Ast.Expr _
  | Ast.Assert _ | Ast.Break | Ast.Continue ->
      self

(** [method_may_block g] returns the may-block predicate over qualified
    method names. *)
let method_may_block (p : Ast.program) (g : Callgraph.t) : string -> bool =
  let directly_blocks qname =
    match
      List.find_opt
        (fun (cls, m) -> Ast.qualified_name cls m = qname)
        (Ast.methods_of_program p)
    with
    | None -> false
    | Some (_, m) ->
        List.exists
          (fun st -> blocking_builtins_in_stmt st <> [])
          (Ast.stmts_of_method m)
  in
  Callgraph.may g directly_blocks

(** All blocking-under-lock violations of a program. *)
let analyze (p : Ast.program) : violation list =
  let g = Callgraph.build p in
  let may_block = method_may_block p g in
  List.concat_map
    (fun (cls, m) ->
      let qname = Ast.qualified_name cls m in
      List.concat_map
        (fun (st, sync_sid) ->
          let direct =
            List.map
              (fun op ->
                {
                  v_method = qname;
                  v_sync_sid = sync_sid;
                  v_sid = st.Ast.sid;
                  v_op = op;
                  v_direct = true;
                })
              (blocking_builtins_in_stmt st)
          in
          let indirect =
            List.filter_map
              (fun callee_simple ->
                if Builtins.is_builtin callee_simple then None
                else
                  let resolved = Callgraph.resolve p callee_simple in
                  if List.exists may_block resolved then
                    Some
                      {
                        v_method = qname;
                        v_sync_sid = sync_sid;
                        v_sid = st.Ast.sid;
                        v_op = callee_simple;
                        v_direct = false;
                      }
                  else None)
              (Ast.callees_of_stmt st)
          in
          direct @ indirect)
        (sync_scoped m.Ast.m_body None))
    (Ast.methods_of_program p)

let violation_to_string (v : violation) =
  Fmt.str "%s: %s %s under lock (sync@%d, stmt@%d)" v.v_method
    (if v.v_direct then "blocking builtin" else "may-block call")
    v.v_op v.v_sync_sid v.v_sid
