lib/symexec/concolic.mli: Minilang Smt Sym
