(** Source locations for MiniJava programs. *)

type t = {
  file : string;  (** label of the compilation unit, e.g. ["zookeeper.mj"] *)
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

val make : file:string -> line:int -> col:int -> t

(** A location standing for "no position" (synthesized nodes). *)
val dummy : t

val is_dummy : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val compare : t -> t -> int

val equal : t -> t -> bool
