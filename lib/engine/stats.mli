(** Engine run statistics: jobs run, cache hits/misses, incremental
    reuses, solver calls (and calls saved by the verdict cache), wall
    time overall and per job. *)

type job_time = {
  jt_job_id : string;
  jt_rule_id : string;
  jt_wall_s : float;  (** dynamic-phase wall time of this job *)
}

type t = {
  mutable enforcements : int;  (** [enforce] calls served *)
  mutable jobs_run : int;  (** dynamic phases actually executed *)
  mutable report_hits : int;
  mutable report_misses : int;
  mutable incremental_reuses : int;
      (** jobs skipped wholesale by the diff-based incremental pre-pass *)
  mutable smt_hits : int;
  mutable smt_misses : int;
  mutable solver_calls : int;
  mutable wall_s : float;
  mutable job_times : job_time list;  (** newest first *)
  mutable retries : int;  (** failed jobs re-run after backoff *)
  mutable degraded_jobs : int;  (** jobs whose report carries a degradation *)
  mutable quarantined : string list;
      (** rule ids whose jobs exhausted their retries, newest first *)
}

val create : unit -> t

val reset : t -> unit

(** SMT verdict-cache hits: solver invocations that never happened. *)
val solver_calls_saved : t -> int

val to_string : t -> string

(** The [n] slowest jobs (default 5), one per line. *)
val slowest_jobs : ?n:int -> t -> string
