(** Incremental invalidation between consecutive program versions.

    Given versions [prev] and [cur], the scheduler wants to re-enqueue
    only the rules whose verdict can have changed.  The decision uses
    [lib/diffing]'s structural diff (text-matched, so immune to the
    global sid renumbering an edit causes) plus call-graph reachability:

    {e invalidation rule} — a rule must be re-enforced iff

    - any method in its region (see {!Fingerprint.region}) was added,
      removed, or changed; or
    - any added or removed statement matches the rule's target spec (a
      statement elsewhere can become, or stop being, a resolved target —
      target resolution scans the whole program); or
    - it is a lock-discipline rule and anything changed at all (its
      region is the whole program).

    Everything else reuses the report computed on [prev] verbatim.  This
    pre-pass is strictly cheaper than fingerprinting: one diff per
    version pair, then per rule a set intersection against the region
    recorded when the rule last ran. *)

open Minilang

type change_summary = {
  ch_methods : string list;
      (** qualified names added, removed, or changed, sorted *)
  ch_stmt_texts : string list;
      (** printed heads of every added/removed statement, including every
          statement of added/removed methods *)
}

let no_changes (s : change_summary) = s.ch_methods = [] && s.ch_stmt_texts = []

(* every printed statement head of a method, recursively *)
let method_stmt_texts (p : Ast.program) (qname : string) : string list =
  List.concat_map
    (fun (cls, m) ->
      if Ast.qualified_name cls m = qname then begin
        let acc = ref [] in
        Ast.iter_stmts (fun st -> acc := Pretty.stmt_head_to_string st :: !acc) m.Ast.m_body;
        !acc
      end
      else [])
    (Ast.methods_of_program p)

(** Structural diff of two versions, summarized for invalidation. *)
let summarize ~(prev : Ast.program) ~(cur : Ast.program) : change_summary =
  let d = Diffing.Prog_diff.compare_programs prev cur in
  let changed =
    List.map (fun (mc : Diffing.Prog_diff.method_change) -> mc.Diffing.Prog_diff.mc_qname)
      d.Diffing.Prog_diff.changed_methods
  in
  let stmt_texts =
    List.concat_map
      (fun (mc : Diffing.Prog_diff.method_change) ->
        mc.Diffing.Prog_diff.mc_added_stmts @ mc.Diffing.Prog_diff.mc_removed_stmts)
      d.Diffing.Prog_diff.changed_methods
    @ List.concat_map (method_stmt_texts cur) d.Diffing.Prog_diff.added_methods
    @ List.concat_map (method_stmt_texts prev) d.Diffing.Prog_diff.removed_methods
  in
  {
    ch_methods =
      List.sort_uniq compare
        (d.Diffing.Prog_diff.added_methods @ d.Diffing.Prog_diff.removed_methods
       @ changed);
    ch_stmt_texts = List.sort_uniq compare stmt_texts;
  }

(* does a statement's printed head mention the target spec? *)
let stmt_matches_target (spec : Semantics.Rule.target_spec) (text : string) : bool =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  match spec with
  | Semantics.Rule.Call_to { callee; _ } -> contains text (callee ^ "(")
  | Semantics.Rule.Stmt_text t -> contains text t

(** Must [rule] be re-enforced after [changes]?  [region] is the method
    set recorded when the rule was last enforced (on [prev]). *)
let rule_affected (changes : change_summary) ~(region : string list)
    (rule : Semantics.Rule.t) : bool =
  match rule.Semantics.Rule.body with
  | Semantics.Rule.Lock_discipline _ -> not (no_changes changes)
  | Semantics.Rule.State_guard { target; _ } ->
      List.exists (fun m -> List.mem m region) changes.ch_methods
      || List.exists (stmt_matches_target target) changes.ch_stmt_texts
