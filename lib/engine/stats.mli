(** Engine run statistics: jobs run, cache hits/misses, incremental
    reuses, solver calls (and calls saved by the verdict cache), wall
    time overall and per job.

    Counts live in [Telemetry.Metrics] under a per-recorder namespace
    ("engine.<id>.<field>"); {!snapshot} materialises them into the
    plain record below. *)

type job_time = {
  jt_job_id : string;
  jt_rule_id : string;
  jt_wall_s : float;  (** dynamic-phase wall time of this job *)
}

(** An immutable snapshot of a recorder. *)
type t = {
  enforcements : int;  (** [enforce] calls served *)
  jobs_run : int;  (** dynamic phases actually executed *)
  report_hits : int;
  report_misses : int;
  incremental_reuses : int;
      (** jobs skipped wholesale by the diff-based incremental pre-pass *)
  smt_hits : int;
  smt_misses : int;
  intern_hits : int;  (** hash-cons table hits during our runs *)
  intern_misses : int;  (** fresh nodes interned during our runs *)
  intern_size : int;
      (** live interned nodes (terms + formulas + strings) at snapshot
          time; process-global and monotone *)
  solver_calls : int;
  assume_pushes : int;  (** incremental-context assertions during our runs *)
  assume_pops : int;
  propagations : int;  (** literals implied by unit propagation *)
  learned_conflicts : int;  (** theory conflict sets learned *)
  shard_contention : int;
      (** hash-cons shard-lock waits during our runs (0 at [jobs <= 1]) *)
  memo_local_hits : int;
      (** verdict-cache hits answered lock-free by a domain-local front
          cache; a subset of [smt_hits] *)
  learned_batched : int;  (** learned clauses published via batch flushes *)
  trie_nodes : int;  (** path-condition trie nodes built during our runs *)
  trie_shared : int;  (** trie nodes shared by >= 2 path conditions *)
  fastpath_interval : int;
      (** solver queries retired by the abstract-domain pre-solver *)
  fastpath_bcp : int;  (** queries retired by the root-BCP-only check *)
  fastpath_subsumed : int;
      (** trie leaf queries answered by prefix-Unsat subtree pruning *)
  fastpath_saved : int;
      (** full DPLL(T) searches avoided (sum of the fast-path rungs) *)
  memo_local_evict : int;
      (** domain-local SMT front-cache resets forced by the cap *)
  memo_fill_ratio : float;
      (** global SMT memo store occupancy at snapshot time, 0..1 *)
  wall_s : float;
  job_times : job_time list;  (** newest first, bounded by the ring *)
  retries : int;  (** failed jobs re-run after backoff *)
  degraded_jobs : int;  (** jobs whose report carries a degradation *)
  quarantined : string list;
      (** rule ids whose jobs exhausted their retries, newest first *)
}

type counter =
  | Enforcements
  | Jobs_run
  | Report_hits
  | Report_misses
  | Incremental_reuses
  | Smt_hits
  | Smt_misses
  | Intern_hits
  | Intern_misses
  | Solver_calls
  | Assume_pushes
  | Assume_pops
  | Propagations
  | Learned_conflicts
  | Shard_contention
  | Memo_local_hits
  | Learned_batched
  | Trie_nodes
  | Trie_shared
  | Fastpath_interval
  | Fastpath_bcp
  | Fastpath_subsumed
  | Fastpath_saved
  | Memo_local_evict
  | Retries
  | Degraded_jobs

(** The engine's accumulation handle: telemetry-backed counters plus a
    bounded ring of per-job wall times. *)
type recorder

(** [job_times_cap] bounds the per-job wall-time ring (default 1024);
    older entries are overwritten. *)
val recorder : ?job_times_cap:int -> unit -> recorder

(** The recorder's metric namespace ("engine.<id>"). *)
val namespace : recorder -> string

val bump : ?by:int -> recorder -> counter -> unit

val read : recorder -> counter -> int

val add_wall : recorder -> float -> unit

val add_job_time : recorder -> job_time -> unit

(** Record a quarantined rule id (newest first in the snapshot). *)
val quarantine : recorder -> string -> unit

(** Zero the recorder: drops its metric namespace, ring, quarantines. *)
val reset : recorder -> unit

val snapshot : recorder -> t

(** SMT verdict-cache hits: solver invocations that never happened. *)
val solver_calls_saved : t -> int

(** Opt-in memo-pressure reporting: when enabled, {!to_string} appends
    the front-cache eviction count and global-store fill ratio.  Off by
    default so the healthy-run string stays byte-identical across
    configurations. *)
val set_memo_pressure : bool -> unit

val memo_pressure_enabled : unit -> bool

val to_string : t -> string

(** The [n] slowest jobs (default 5), one per line; bounded selection,
    same order as a stable descending sort. *)
val slowest_jobs : ?n:int -> t -> string
