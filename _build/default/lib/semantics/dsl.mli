(** The developer-facing rule language (§5, open question ii).

    One rule per block:
    {v
      rule zk.ephemeral-closing:
        because "ephemeral nodes must die with their session"
        when calling createEphemeralNode
        require Session != null && Session.closing == false

      rule zk.serialize:
        forbid blocking under lock
    v}

    Directives: [because "<text>"] (optional high-level semantics),
    [when calling <callee> [in <Qualified.method>]] or
    [when at "<statement text>"] (target), [require <expr>] (condition in
    MiniJava expression syntax over canonical state paths),
    [forbid blocking under lock [in <Qualified.method>]] and
    [forbid all calls under lock] (lock rules). *)

exception Parse_error of string * int  (** message, 1-based line *)

(** Parse a condition written in the DSL's expression syntax.
    @raise Parse_error when the text is outside the predicate fragment. *)
val parse_condition : ?line:int -> string -> Smt.Formula.t

(** Parse a DSL document into rules. *)
val parse : string -> Rule.t list

(** Render a rule in DSL syntax; [parse] of the output yields the rule. *)
val print_rule : Rule.t -> string

val print_rules : Rule.t list -> string
