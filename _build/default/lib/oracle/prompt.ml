(** Prompt construction — Listing 1 of the paper, verbatim in structure.

    The deterministic inference backend does not *need* a textual prompt,
    but constructing it keeps the interface identical to the paper's: a
    drop-in real-LLM client would consume exactly this text.  The prompt
    is also displayed by the E4 workflow experiment. *)

let instructions =
  {|You are an AI assistant that extracts violated low-level semantics from a past system failure.
You will receive three inputs:
- Failure description and developer discussion
- Code patch (the diff)
- Source code after the patch has been applied
Here are the steps you will take:
  1. Identify the root cause of this failure
  2. Identify the high-level semantics: a single concise statement describing the
     system-level behavioral change introduced by this pull request.
  3. Identify the low-level semantics: a single concise statement describing the
     implementation-local invariant that must hold so that a corresponding high-level
     property cannot be violated.
  4. Translate the low-level semantics into a checkable format:
     - one condition statement (predicates over concrete state and control-flow that needs to be checked)
     - one target statement (the code statement where the condition should be checked)
  5. Describe the reasoning for choosing those statements
  6. Repeat previous steps until all unique checks have been reasoned
Output your answer in the exact format:
  {"high_level_semantics": "<description>",
   "low_level_semantics": {
     "description": "<concise_description>",
     "target_statement": "<code_text>",
     "condition_statement": "<predicates>", ...},
   "reasoning": "<summary>" ...}|}

(** Render the full prompt for a ticket. *)
let build (t : Ticket.t) : string =
  String.concat "\n"
    [
      instructions;
      "";
      "=== INPUT 1: failure description and developer discussion ===";
      Fmt.str "Ticket %s (%s): %s" t.Ticket.ticket_id t.Ticket.system t.Ticket.title;
      t.Ticket.description;
      "Discussion: " ^ t.Ticket.discussion;
      "";
      "=== INPUT 2: code patch (the diff) ===";
      Ticket.diff t;
      "=== INPUT 3: source code after the patch has been applied ===";
      t.Ticket.patched_source;
    ]

(** Approximate token count of a prompt (whitespace-split), used to decide
    when the RAG context-window fallback must kick in. *)
let token_estimate (s : string) : int =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")
  |> List.length
