(* The engine's side of the domain-local cache lifecycle.  [Pool]
   stays policy-free (it just runs hooks); this module knows which
   domain-local state the checking pipeline actually carries and wires
   it to worker start/retire. *)

let enter () =
  (* warm the SMT memo's per-domain front cache so the worker's first
     query pays no DLS setup *)
  Smt.Memo.init_local ()

let leave () =
  (* publish any learned conflicts still sitting in this domain's
     pending buffer — a joined domain's DLS is unreachable, and the
     clauses prune every later solve *)
  Smt.Solver.flush_learned ()
