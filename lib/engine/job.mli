(** The engine's job model: one job per (program-version fingerprint ×
    rule), with deterministic digest ids and a cost-estimate priority
    (most-expensive-first minimizes the parallel makespan tail; ties
    break on job id so scheduling is fully deterministic). *)

type t = {
  job_id : string;  (** digest of (program fingerprint, rule id) *)
  rule_id : string;
  key : string;  (** report-cache key ({!Fingerprint.job_key}) *)
  priority : int;  (** estimated cost; higher schedules earlier *)
  prepared : Checker.prepared;
}

(** Estimated dynamic-phase cost (tests × static paths for guards; a
    large constant plus the suite size for lock rules). *)
val estimate_cost : Checker.prepared -> int

val make : program_fp:string -> key:string -> Checker.prepared -> t

(** Strict scheduling order: higher priority first, job-id tie-break. *)
val before : t -> t -> bool

(** Array-backed binary max-heap over {!before}. *)
module Heap : sig
  type job = t

  type t

  val create : unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val push : t -> job -> unit

  val pop : t -> job option

  val of_list : job list -> t
end

(** Jobs in scheduling order (heap drain; deterministic). *)
val schedule : t list -> t list
