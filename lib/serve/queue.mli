(** Bounded multi-tenant admission queue with explicit backpressure.

    Admission is bounded by a total depth: a {!push} beyond it {e sheds}
    (returns the depth so the caller can answer [overloaded]) instead of
    blocking — the accept loop never stalls behind the worker.  Dispatch
    is fair: tenants with pending work are drained round-robin in
    first-seen rotation order, FIFO within each tenant, so one tenant
    flooding the queue delays its own requests, not everyone's.  The
    cost-priority heap underneath the engine still orders the {e jobs}
    of whichever request is running; this queue only decides whose
    request runs next.

    Mutex + condition protected: one accept loop pushing, one worker
    popping (both directions are safe with several of each). *)

type 'a t

(** [create ~depth ()] — total admitted-item bound, clamped to >= 1. *)
val create : depth:int -> unit -> 'a t

type admit =
  | Admitted
  | Shed of int  (** queue full; payload = configured depth *)

(** Never blocks.  After {!close}, always sheds. *)
val push : 'a t -> tenant:string -> 'a -> admit

(** Next (tenant, item) in fair order; blocks while the queue is open
    and empty; [None] once closed and drained. *)
val pop : 'a t -> (string * 'a) option

(** Non-blocking {!pop}. *)
val try_pop : 'a t -> (string * 'a) option

(** Items currently admitted. *)
val length : 'a t -> int

(** Items shed since creation. *)
val shed_count : 'a t -> int

(** Wake blocked poppers; subsequent pushes shed. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool
