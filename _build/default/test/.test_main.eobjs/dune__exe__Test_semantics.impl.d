test/test_semantics.ml: Alcotest Ast Astring_contains Corpus Lisa List Minilang Option Parser Pretty Semantics Smt
