type stats = { hits : int; misses : int; size : int }

type ('node, 'elt) t = {
  name : string;
  equal : 'node -> 'elt -> bool;
  build : id:int -> hkey:int -> 'node -> 'elt;
  lock : Mutex.t;
  buckets : (int, 'elt list) Hashtbl.t;
  mutable next_id : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

(* Registry of all tables, for telemetry: the element types differ per
   table, so we store a stats thunk rather than the table itself. *)
let registry_lock = Mutex.create ()

let registered : (string * (unit -> stats)) list ref = ref []

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hit_count; misses = t.miss_count; size = t.next_id } in
  Mutex.unlock t.lock;
  s

let create ~name ~equal ~build () =
  let t =
    {
      name;
      equal;
      build;
      lock = Mutex.create ();
      buckets = Hashtbl.create 1024;
      next_id = 0;
      hit_count = 0;
      miss_count = 0;
    }
  in
  Mutex.lock registry_lock;
  registered := !registered @ [ (name, fun () -> stats t) ];
  Mutex.unlock registry_lock;
  t

let name t = t.name

let intern t ~hkey node =
  Mutex.lock t.lock;
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.buckets hkey) in
  let elt =
    match List.find_opt (fun e -> t.equal node e) bucket with
    | Some e ->
        t.hit_count <- t.hit_count + 1;
        e
    | None ->
        let id = t.next_id in
        t.next_id <- id + 1;
        t.miss_count <- t.miss_count + 1;
        let e = t.build ~id ~hkey node in
        Hashtbl.replace t.buckets hkey (e :: bucket);
        e
  in
  Mutex.unlock t.lock;
  elt

let registry () =
  Mutex.lock registry_lock;
  let tables = !registered in
  Mutex.unlock registry_lock;
  List.map (fun (n, get) -> (n, get ())) tables
