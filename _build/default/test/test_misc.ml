(* Remaining coverage: stmt-text-targeted rules end to end, model-checker
   budgets, registry version mapping, RAG query content. *)

open Minilang

(* a DSL rule that targets a statement by its printed text *)
let test_stmt_text_rule_enforces () =
  let c = List.hd Corpus.Zookeeper.cases in
  let p = Corpus.Case.program_at c 2 in
  (* target the ephemeral-map insertion inside createEphemeralNode itself:
     the rule then judges the paths of all its callers *)
  let rules =
    Semantics.Dsl.parse
      {|rule eph.text:
  when at "mapPut(this.ephemerals, path, sessionId);"
  require Session != null && Session.closing == false|}
  in
  let report = Lisa.Checker.check_rule p (List.hd rules) in
  Alcotest.(check int) "one target statement" 1 report.Lisa.Checker.rep_targets;
  Alcotest.(check bool) "violations via the learner caller" true
    (report.Lisa.Checker.rep_violations <> []);
  Alcotest.(check bool) "prep callers verify" true (report.Lisa.Checker.rep_verified <> [])

let test_mc_sequence_budget () =
  let src =
    {|
class S { field n: int = 0; }
method mcInit(): S { return new S(); }
method mcOpA(s: S) { s.n = s.n + 1; }
method mcOpB(s: S) { s.n = s.n + 2; }
method mcInv(s: S): bool { return true; }
|}
  in
  let sc =
    {
      Mc.Explorer.program = Parser.program src;
      init = "mcInit";
      ops = [ "mcOpA"; "mcOpB" ];
      invariant = "mcInv";
    }
  in
  match
    Mc.Explorer.explore
      ~config:{ Mc.Explorer.default_config with Mc.Explorer.depth = 10; max_sequences = 50 }
      sc
  with
  | Mc.Explorer.Safe s ->
      Alcotest.(check bool) "budget respected" true (s.Mc.Explorer.sequences <= 50)
  | o -> Alcotest.fail (Mc.Explorer.outcome_to_string o)

let test_registry_stage_mapping () =
  let snapshot = Option.get (Corpus.Registry.find_case "hbase-snapshot-ttl") in
  let eph = Option.get (Corpus.Registry.find_case "zk-ephemeral") in
  Alcotest.(check int) "snapshot v5 -> stage 4 (latest has the bug)" 4
    (Corpus.Registry.stage_at_version snapshot 5);
  Alcotest.(check int) "ephemeral v5 -> stage 3 (fully fixed)" 3
    (Corpus.Registry.stage_at_version eph 5);
  Alcotest.(check int) "v0 is stage 0" 0 (Corpus.Registry.stage_at_version eph 0)

let test_rag_query_mentions_chain_and_rule () =
  let c = List.hd Corpus.Zookeeper.cases in
  let p = Corpus.Case.program_at c 2 in
  let inf = Oracle.Inference.infer (Corpus.Case.original_ticket c) in
  let rule = Semantics.Rule.generalize (List.hd inf.Oracle.Inference.inf_rules) in
  let g = Analysis.Callgraph.build p in
  let targets =
    Semantics.Rulebook.resolve_targets p (Option.get (Semantics.Rule.target rule))
  in
  let tree = Analysis.Paths.exec_tree p g (snd (List.hd targets)).Ast.sid in
  let ep = List.hd tree.Analysis.Paths.et_paths in
  let q = Oracle.Test_select.query_of_path rule ep in
  Alcotest.(check bool) "query mentions an entry test" true
    (Astring_contains.contains q "test_");
  Alcotest.(check bool) "query mentions the rule vocabulary" true
    (Astring_contains.contains q "createEphemeralNode")

let test_lockscope_ignores_unsynced_blocking () =
  let p = Parser.program "class C { method f() { fsync(1); } }" in
  Alcotest.(check int) "no sync, no violation" 0
    (List.length (Analysis.Lockscope.analyze p))

let test_callgraph_dot_output () =
  let p = Parser.program "method a() { b(); } method b() { }" in
  let dot = Analysis.Callgraph.to_dot (Analysis.Callgraph.build p) in
  Alcotest.(check bool) "dot edge" true (Astring_contains.contains dot "\"a\" -> \"b\"")

let test_prompt_instructions_verbatim_steps () =
  (* the prompt keeps the 6-step reasoning structure the paper found
     necessary for accuracy *)
  List.iter
    (fun step ->
      Alcotest.(check bool) step true
        (Astring_contains.contains Oracle.Prompt.instructions step))
    [
      "1. Identify the root cause";
      "2. Identify the high-level semantics";
      "3. Identify the low-level semantics";
      "4. Translate the low-level semantics";
      "5. Describe the reasoning";
      "6. Repeat previous steps";
    ]

(* a ticket whose patch adds no guard (pure refactoring) yields no rules,
   and the pipeline handles that gracefully *)
let test_inference_no_guard_patch () =
  let buggy = "method f(x: int): int { return x + 1; }" in
  let patched = "method f(x: int): int { var y: int = x + 1; return y; }" in
  let ticket =
    Oracle.Ticket.make ~ticket_id:"SYN-1" ~system:"synthetic" ~title:"refactor"
      ~description:"pure refactoring" ~discussion:"No behaviour change."
      ~buggy_source:buggy ~patched_source:patched ~regression_tests:[]
  in
  let inf = Oracle.Inference.infer ticket in
  Alcotest.(check int) "no rules inferred" 0 (List.length inf.Oracle.Inference.inf_rules);
  let outcome = Lisa.Pipeline.learn ticket in
  Alcotest.(check int) "nothing accepted" 0 (List.length outcome.Lisa.Pipeline.accepted);
  Alcotest.(check int) "nothing rejected" 0 (List.length outcome.Lisa.Pipeline.rejected)

(* §3.2's final step: when the suite cannot drive a path, the checker
   reports it for a developer verdict instead of silently passing.
   Simulate by deleting the test that drives the learner path. *)
let test_uncovered_path_needs_developer_verdict () =
  let c = List.hd Corpus.Zookeeper.cases in
  let p = Corpus.Case.program_at c 2 in
  let without_driver =
    {
      p with
      Minilang.Ast.p_funcs =
        List.filter
          (fun (f : Minilang.Ast.method_decl) ->
            f.Minilang.Ast.m_name <> "test_eph_learner_forward_create")
          p.Minilang.Ast.p_funcs;
    }
  in
  let inf = Oracle.Inference.infer (Corpus.Case.original_ticket c) in
  let rule = Semantics.Rule.generalize (List.hd inf.Oracle.Inference.inf_rules) in
  let report =
    Lisa.Checker.check_rule
      ~config:{ Lisa.Checker.default_config with Lisa.Checker.selection = Lisa.Checker.All_tests }
      without_driver rule
  in
  (* the learner path is never observed: no violation, but uncovered *)
  Alcotest.(check int) "no violations without the driver" 0
    (List.length report.Lisa.Checker.rep_violations);
  Alcotest.(check bool) "uncovered paths reported" true
    (report.Lisa.Checker.rep_uncovered_paths <> []);
  Alcotest.(check bool) "uncovered mentions the learner path" true
    (List.exists
       (fun path -> Astring_contains.contains path "forwardCreate")
       report.Lisa.Checker.rep_uncovered_paths)

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "stmt-text rule enforces" `Quick test_stmt_text_rule_enforces;
        Alcotest.test_case "mc sequence budget" `Quick test_mc_sequence_budget;
        Alcotest.test_case "registry stage mapping" `Quick test_registry_stage_mapping;
        Alcotest.test_case "RAG query content" `Quick test_rag_query_mentions_chain_and_rule;
        Alcotest.test_case "lockscope ignores unsynced" `Quick
          test_lockscope_ignores_unsynced_blocking;
        Alcotest.test_case "callgraph dot" `Quick test_callgraph_dot_output;
        Alcotest.test_case "prompt six steps" `Quick test_prompt_instructions_verbatim_steps;
        Alcotest.test_case "guard-less ticket" `Quick test_inference_no_guard_patch;
        Alcotest.test_case "uncovered path needs developer verdict" `Quick
          test_uncovered_path_needs_developer_verdict;
      ] );
  ]
