(** Recursive-descent parser for MiniJava.

    Statement ids are assigned in pre-order from [first_sid], so parsing
    the same source twice yields identical ids — the property the
    diff-to-statement mapping relies on. *)

exception Error of string * Loc.t

(** Parse a full program.

    @param file label used in locations (default ["<string>"]).
    @param first_sid base for statement-id assignment (default 1).
    @raise Error on syntax errors (and {!Lexer.Error} on lexical ones). *)
val program : ?file:string -> ?first_sid:int -> string -> Ast.program

(** Parse a single expression, e.g. a semantic condition written in
    MiniJava concrete syntax. *)
val expression : ?file:string -> string -> Ast.expr
