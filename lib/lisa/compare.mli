(** Experiment E3 — Figure 4: testing vs. LISA vs. refinement verification.
    For every case, does each strategy prevent the second incident? *)

type strategy_result = {
  s_caught : bool;
  s_effort : float;  (** strategy-specific effort proxy *)
  s_detail : string;
}

type case_row = {
  cr_case : string;
  cr_system : string;
  cr_testing : strategy_result;
  cr_lisa : strategy_result;
  cr_verification : strategy_result;
}

type t = {
  rows : case_row list;
  testing_caught : int;
  lisa_caught : int;
  verification_caught : int;
  total : int;
}

(** Modeled proof-to-implementation ratio for refinement verification. *)
val spec_factor : float

val run : ?config:Pipeline.config -> ?registry:Corpus.Registry.t -> unit -> t

val print : t -> string
