(** [lisa serve] — the enforcement engine as a long-running service.

    One daemon owns: a lazily-built {!Engine.Scheduler} per subject
    system (hash-cons tables, report cache, {!Smt.Memo}, and the
    learned-clause store all stay warm across requests), a
    fingerprint-keyed response cache (optionally persisted through
    {!Snapshot}), a bounded fair admission {!Queue}, and a per-tenant
    {!Resilience.Kbreaker} so one pathological stream degrades only its
    own tenant.  See [lib/serve/README.md] for protocol, backpressure,
    and fairness semantics.

    All daemon logging goes through the [Telemetry.Event] scope
    ["serve"], every message carrying a [req=<id> tenant=<t>]
    correlation prefix; requests run under a [serve.request] span and
    the queue is sampled on the [serve.queue] counter series. *)

type config = {
  jobs : int;  (** engine worker domains per request *)
  queue_depth : int;  (** admission bound; beyond it requests shed *)
  breaker_threshold : int;  (** consecutive failures to open a tenant *)
  breaker_cooldown : int;  (** tenant requests skipped while open *)
  cache_dir : string option;  (** snapshot directory; [None] = no disk *)
  drain_after_eof : bool;
      (** testing mode for {!serve_channels}: admit the whole input
          stream before the worker starts, so admission order — and
          which request sheds — is deterministic *)
  triage : Triage.config option;
      (** witness-replay triage over violating rules; the tier per rule
          id lands in the enforce summary's [sum_tiers].  [None] (or a
          disabled config) renders the v1-identical tier-less wire form.
          On by default: replay only runs when there are findings, so
          clean verdicts pay nothing. *)
  registry : Corpus.Registry.t;
      (** the corpus the daemon serves: case lookups, system assembly
          and learned books all resolve against this value (default the
          builtin corpus) *)
}

val default_config : config

type t

(** Create the daemon; when [cache_dir] is set, warm the response cache
    and the {!Smt.Memo} from its snapshots (any unreadable snapshot is
    reported through {!warm_report} and falls back to a cold start —
    never an error). *)
val create : ?config:config -> unit -> t

val config : t -> config

(** Per-cache load outcome, e.g. [("responses", "warm (12 entries)");
    ("smt-memo", "cold: digest mismatch")].  Empty without a cache dir. *)
val warm_report : t -> (string * string) list

(** Parse one JSONL line and serve it (parse failures become [error]
    responses).  Bypasses the admission queue — this is the direct
    entry point benchmarks and tests drive. *)
val handle_line : t -> string -> Protocol.response

val handle_request : t -> Protocol.request -> Protocol.response

(** Persist the response cache and SMT verdict memo to [cache_dir]
    (no-op returning 0 without one).  Returns entries written. *)
val save : t -> int

(** Server counters: served, cache_hits, shed, breaker_rejected,
    errors, response_cache entries, breaker trips. *)
val counters : t -> (string * int) list

val response_cache_size : t -> int

(** Serve JSONL over channels (stdin/stdout mode): accept loop on the
    calling domain, one worker domain draining the queue.  Returns
    after EOF or a [shutdown] request, once the queue is drained and —
    with a cache dir — snapshots are saved. *)
val serve_channels : t -> in_channel -> out_channel -> unit

(** Serve JSONL over a Unix domain socket at [path] (created, replacing
    any stale file; removed on exit).  Multiple concurrent clients are
    multiplexed with [select]; runs until a [shutdown] request or
    SIGINT/SIGTERM. *)
val serve_socket : t -> path:string -> unit
