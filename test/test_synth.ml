(* Generated-corpus properties: every synthetic case over random seeds
   passes Case.validate and its planted violation is found at the
   planted stage; the value-based Registry.builtin is byte-identical to
   the pre-refactor flat module output; synth registries are
   deterministic and scale-independent. *)

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* qcheck: random seeds -> validate green + planted bug found          *)
(* ------------------------------------------------------------------ *)

let arb_seed_case =
  QCheck.make
    ~print:(fun (seed, k) -> Printf.sprintf "seed=%d case=%d" seed k)
    QCheck.Gen.(pair (int_bound 0xFFFF) (int_bound 15))

let prop_generated_case_valid =
  QCheck.Test.make ~name:"synth: generated cases validate green" ~count:12
    arb_seed_case (fun (seed, k) ->
      match Corpus.Synth.validate_failure (Corpus.Synth.case_at ~seed k) with
      | None -> true
      | Some e -> QCheck.Test.fail_reportf "seed=%d case=%d: %s" seed k e)

let prop_planted_bug_found =
  QCheck.Test.make ~name:"synth: planted violation found at planted stage"
    ~count:8 arb_seed_case (fun (seed, k) ->
      match Lisa.Synth_check.full (Corpus.Synth.case_at ~seed k) with
      | None -> true
      | Some e -> QCheck.Test.fail_reportf "seed=%d case=%d: %s" seed k e)

(* ------------------------------------------------------------------ *)
(* Determinism and scale-independence                                  *)
(* ------------------------------------------------------------------ *)

(* deterministic complement to the sampled properties: every family,
   both checks, fixed seeds *)
let test_every_family_checks () =
  List.iter
    (fun seed ->
      List.iteri
        (fun k fam ->
          let c = Corpus.Synth.case_at ~seed k in
          check (Printf.sprintf "family order %d" k) true
            (Filename.check_suffix c.Corpus.Case.case_id
               (Corpus.Synth.family_name fam));
          match Lisa.Synth_check.full c with
          | None -> ()
          | Some e ->
              Alcotest.failf "seed=%d %s (%s): %s" seed c.Corpus.Case.case_id
                (Corpus.Synth.family_name fam) e)
        Corpus.Synth.families)
    [ 1; 42 ]

let test_registry_deterministic () =
  let r1 = Corpus.Synth.registry ~seed:7 ~scale:1 () in
  let r2 = Corpus.Synth.registry ~seed:7 ~scale:1 () in
  List.iter2
    (fun s1 s2 ->
      check_str "system name" s1 s2;
      List.iter
        (fun v ->
          check_str
            (Printf.sprintf "%s v%d source" s1 v)
            (Corpus.Registry.source_of r1 s1 ~version:v)
            (Corpus.Registry.source_of r2 s2 ~version:v))
        r1.Corpus.Registry.scan_versions)
    r1.Corpus.Registry.systems r2.Corpus.Registry.systems;
  let r3 = Corpus.Synth.registry ~seed:8 ~scale:1 () in
  check "different seed differs" true
    (Corpus.Registry.source_of r1
       (List.hd r1.Corpus.Registry.systems)
       ~version:2
    <> Corpus.Registry.source_of r3
         (List.hd r3.Corpus.Registry.systems)
         ~version:2
    || List.hd r1.Corpus.Registry.systems
       <> List.hd r3.Corpus.Registry.systems)

let test_case_scale_independent () =
  (* case k is byte-identical whether reached via case_at or a registry *)
  let r = Corpus.Synth.registry ~seed:11 ~scale:2 () in
  List.iteri
    (fun k (c : Corpus.Case.t) ->
      let c' = Corpus.Synth.case_at ~seed:11 k in
      check_str "case id" c.Corpus.Case.case_id c'.Corpus.Case.case_id;
      for stage = 0 to c.Corpus.Case.n_stages - 1 do
        check_str
          (Printf.sprintf "%s stage %d" c.Corpus.Case.case_id stage)
          (c.Corpus.Case.source stage) (c'.Corpus.Case.source stage)
      done)
    r.Corpus.Registry.cases

let test_minimizer_passes_on_green () =
  check "green case yields no repro" true
    (Corpus.Synth.minimize ~seed:3 5 = None)

let test_minimizer_shrinks_failure () =
  (* an artificial predicate that "fails" whenever any knob is on: the
     minimizer must descend to min_knobs *)
  let fails (c : Corpus.Case.t) =
    ignore c;
    Some "always"
  in
  match Corpus.Synth.minimize ~fails ~seed:3 5 with
  | None -> Alcotest.fail "expected a repro"
  | Some r ->
      check "shrunk to min knobs" true (r.Corpus.Synth.rp_knobs = Corpus.Synth.min_knobs);
      check "repro command" true
        (r |> Corpus.Synth.repro_command
        = "lisa corpus synth --seed 3 --case 5")

(* ------------------------------------------------------------------ *)
(* Builtin pin: the value-based registry is byte-identical to the      *)
(* pre-refactor flat module API                                        *)
(* ------------------------------------------------------------------ *)

let test_builtin_shim_identical () =
  let b = Corpus.Registry.builtin in
  check_int "n_cases" Corpus.Registry.n_cases (Corpus.Registry.case_count b);
  check_int "n_bugs" Corpus.Registry.n_bugs (Corpus.Registry.bug_count b);
  check_int "old semantics"
    Corpus.Registry.n_bugs_violating_old_semantics
    (Corpus.Registry.old_semantics_count b);
  check_int "max_version" Corpus.Registry.max_version b.Corpus.Registry.max_version;
  check "systems" true (Corpus.Registry.systems = b.Corpus.Registry.systems);
  check "all_cases" true (Corpus.Registry.all_cases == b.Corpus.Registry.cases);
  List.iter
    (fun sys ->
      check "history" true
        (Corpus.Registry.commit_history sys = Corpus.Registry.history_of b sys);
      for v = 0 to Corpus.Registry.max_version do
        check_str
          (Printf.sprintf "%s v%d" sys v)
          (Corpus.Registry.system_source sys ~version:v)
          (Corpus.Registry.source_of b sys ~version:v)
      done)
    Corpus.Registry.systems

(* Golden pins of the pre-refactor module output (captured at the seed
   of this refactor): study stats and a commit-history line. *)
let test_builtin_golden_pins () =
  check_int "16 cases" 16 Corpus.Registry.n_cases;
  check_int "34 bugs" 34 Corpus.Registry.n_bugs;
  check_int "max version 5" 5 Corpus.Registry.max_version;
  check_int "ephemeral total 46" 46 Corpus.Registry.ephemeral_bug_total;
  check_int "avg test files" 1_309 Corpus.Registry.avg_test_files;
  check_int "gcp changes/day" 16_000 Corpus.Registry.changes_per_day_gcp;
  check "scan versions" true
    (Corpus.Registry.builtin.Corpus.Registry.scan_versions = [ 1; 2; 3; 5 ]);
  match Corpus.Registry.commit_history "zookeeper" with
  | (0, first) :: _ -> check_str "v0 message" "initial release" first
  | _ -> Alcotest.fail "history must start at v0"

let suite =
  [
    ( "synth.qcheck",
      List.map QCheck_alcotest.to_alcotest
        [ prop_generated_case_valid; prop_planted_bug_found ] );
    ( "synth.registry",
      [
        Alcotest.test_case "all four families check" `Quick
          test_every_family_checks;
        Alcotest.test_case "same seed byte-identical" `Quick
          test_registry_deterministic;
        Alcotest.test_case "case scale-independent" `Quick
          test_case_scale_independent;
        Alcotest.test_case "minimizer passes on green" `Quick
          test_minimizer_passes_on_green;
        Alcotest.test_case "minimizer shrinks to min knobs" `Quick
          test_minimizer_shrinks_failure;
        Alcotest.test_case "builtin shim identical" `Quick
          test_builtin_shim_identical;
        Alcotest.test_case "builtin golden pins" `Quick
          test_builtin_golden_pins;
      ] );
  ]
