(** TF-IDF embeddings with cosine similarity — the embedding-model
    substitute for the paper's OpenAI text-embedding-3-large.

    Documents are tokenized with an identifier-aware tokenizer (camelCase
    and snake_case split), so related tests and queries land near each
    other without a learned model. *)

type doc = { doc_id : string; text : string }

type vector = (int * float) list  (** sparse, sorted by dimension, normalized *)

type index = {
  vocab : (string, int) Hashtbl.t;
  idf : float array;
  doc_vectors : (string * vector) list;
  n_docs : int;
}

val tokenize : string -> string list

(** Cosine similarity of two normalized sparse vectors, in [0, 1]. *)
val cosine : vector -> vector -> float

(** Build an index over a document collection. *)
val build : doc list -> index

(** Embed a query with the index's vocabulary; out-of-vocabulary tokens
    are dropped. *)
val embed : index -> string -> vector

(** Top-[k] documents by similarity; ties broken by document id. *)
val top_k : index -> query:string -> k:int -> (string * float) list
