(** Static sanity checker for MiniJava programs.

    MiniJava is dynamically typed at run time (containers are
    heterogeneous), but subject systems are large enough that typo-level
    mistakes must be caught before a corpus program is admitted.  The
    checker verifies, per program:

    - every called function/method/builtin exists and arities match where
      they are statically known;
    - every referenced class exists; [new C(...)] matches [C.init]'s arity;
    - variables are declared before use; no variable shadows a parameter;
    - field reads/writes name declared fields when the receiver's class is
      statically known (declared type or [this]);
    - obvious scalar type errors ([1 + true], [if ("x")], ...), with [any]
      acting as a wildcard;
    - [break]/[continue] appear only inside loops.

    Errors are collected, not raised, so callers can report all of them. *)

type error = { msg : string; loc : Loc.t }

let err errors loc fmt = Fmt.kstr (fun msg -> errors := { msg; loc } :: !errors) fmt

(* Static types: a lattice-free approximation.  [T_any] unifies with
   everything; [T_ref ""] stands for "some object of unknown class". *)

let compatible (a : Ast.typ) (b : Ast.typ) : bool =
  match (a, b) with
  | Ast.T_any, _ | _, Ast.T_any -> true
  | Ast.T_int, Ast.T_int | Ast.T_bool, Ast.T_bool | Ast.T_str, Ast.T_str -> true
  | Ast.T_map, Ast.T_map | Ast.T_list, Ast.T_list | Ast.T_void, Ast.T_void -> true
  | Ast.T_ref a', Ast.T_ref b' -> a' = "" || b' = "" || a' = b'
  (* null is represented as T_ref "" and may flow into containers too *)
  | Ast.T_ref "", (Ast.T_map | Ast.T_list) | (Ast.T_map | Ast.T_list), Ast.T_ref "" ->
      true
  | _, _ -> false

type env = {
  program : Ast.program;
  cls : Ast.class_decl option;  (** enclosing class, for [this] *)
  mutable vars : (string * Ast.typ) list;
  errors : error list ref;
  mutable in_loop : bool;
}

let null_t = Ast.T_ref ""

let lookup_var env x = List.assoc_opt x env.vars

let class_of_typ env = function
  | Ast.T_ref name when name <> "" -> Ast.find_class env.program name
  | _ -> None

let rec check_expr (env : env) (e : Ast.expr) : Ast.typ =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Int_lit _ -> Ast.T_int
  | Ast.Bool_lit _ -> Ast.T_bool
  | Ast.Str_lit _ -> Ast.T_str
  | Ast.Null_lit -> null_t
  | Ast.This -> (
      match env.cls with
      | Some c -> Ast.T_ref c.Ast.c_name
      | None ->
          err env.errors loc "'this' used outside a class";
          Ast.T_any)
  | Ast.Var x -> (
      match lookup_var env x with
      | Some t -> t
      | None ->
          err env.errors loc "unbound variable %s" x;
          Ast.T_any)
  | Ast.Field (o, f) -> (
      let ot = check_expr env o in
      match class_of_typ env ot with
      | None -> Ast.T_any
      | Some c -> (
          match List.find_opt (fun (fd : Ast.field_decl) -> fd.Ast.f_name = f) c.Ast.c_fields with
          | Some fd -> fd.Ast.f_typ
          | None ->
              err env.errors loc "class %s has no field %s" c.Ast.c_name f;
              Ast.T_any))
  | Ast.Binop (op, a, b) -> check_binop env loc op a b
  | Ast.Unop (Ast.Not, a) ->
      let t = check_expr env a in
      if not (compatible t Ast.T_bool) then
        err env.errors loc "'!' applied to %s" (Ast.typ_to_string t);
      Ast.T_bool
  | Ast.Unop (Ast.Neg, a) ->
      let t = check_expr env a in
      if not (compatible t Ast.T_int) then
        err env.errors loc "unary '-' applied to %s" (Ast.typ_to_string t);
      Ast.T_int
  | Ast.Call (name, args) -> (
      let arg_ts = List.map (check_expr env) args in
      match Builtins.find name with
      | Some d ->
          if d.Builtins.b_arity >= 0 && d.Builtins.b_arity <> List.length args then
            err env.errors loc "builtin %s expects %d args, got %d" name
              d.Builtins.b_arity (List.length args);
          Ast.T_any
      | None -> (
          match Ast.find_func env.program name with
          | Some f ->
              if List.length f.Ast.m_params <> List.length args then
                err env.errors loc "function %s expects %d args, got %d" name
                  (List.length f.Ast.m_params) (List.length args);
              ignore arg_ts;
              f.Ast.m_ret
          | None ->
              err env.errors loc "unknown function %s" name;
              Ast.T_any))
  | Ast.Method_call (o, m, args) -> (
      let ot = check_expr env o in
      let arg_ts = List.map (check_expr env) args in
      ignore arg_ts;
      match class_of_typ env ot with
      | None ->
          (* dynamic receiver: check the method exists *somewhere* *)
          if Ast.methods_named env.program m = [] then
            err env.errors loc "no class defines a method named %s" m;
          Ast.T_any
      | Some c -> (
          match Ast.find_method_in_class c m with
          | Some md ->
              if List.length md.Ast.m_params <> List.length args then
                err env.errors loc "method %s.%s expects %d args, got %d"
                  c.Ast.c_name m (List.length md.Ast.m_params) (List.length args);
              md.Ast.m_ret
          | None ->
              err env.errors loc "class %s has no method %s" c.Ast.c_name m;
              Ast.T_any))
  | Ast.New (cls_name, args) -> (
      List.iter (fun a -> ignore (check_expr env a)) args;
      match Ast.find_class env.program cls_name with
      | None ->
          err env.errors loc "unknown class %s" cls_name;
          Ast.T_any
      | Some c -> (
          match Ast.find_method_in_class c "init" with
          | Some md ->
              if List.length md.Ast.m_params <> List.length args then
                err env.errors loc "%s.init expects %d args, got %d" cls_name
                  (List.length md.Ast.m_params) (List.length args)
          | None ->
              if args <> [] then
                err env.errors loc "class %s has no init method but 'new' got %d args"
                  cls_name (List.length args));
          Ast.T_ref cls_name)

and check_binop env loc op a b : Ast.typ =
  let ta = check_expr env a in
  let tb = check_expr env b in
  match op with
  | Ast.And | Ast.Or ->
      if not (compatible ta Ast.T_bool) then
        err env.errors loc "'%s' lhs is %s" (Ast.binop_to_string op) (Ast.typ_to_string ta);
      if not (compatible tb Ast.T_bool) then
        err env.errors loc "'%s' rhs is %s" (Ast.binop_to_string op) (Ast.typ_to_string tb);
      Ast.T_bool
  | Ast.Eq | Ast.Neq -> Ast.T_bool
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if not (compatible ta Ast.T_int || compatible ta Ast.T_str) then
        err env.errors loc "'%s' lhs is %s" (Ast.binop_to_string op) (Ast.typ_to_string ta);
      if not (compatible tb Ast.T_int || compatible tb Ast.T_str) then
        err env.errors loc "'%s' rhs is %s" (Ast.binop_to_string op) (Ast.typ_to_string tb);
      Ast.T_bool
  | Ast.Add ->
      (* '+' is int addition or string concatenation *)
      if compatible ta Ast.T_str then Ast.T_str
      else if compatible ta Ast.T_int && compatible tb Ast.T_int then Ast.T_int
      else (
        err env.errors loc "'+' applied to %s and %s" (Ast.typ_to_string ta)
          (Ast.typ_to_string tb);
        Ast.T_any)
  | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      if not (compatible ta Ast.T_int) then
        err env.errors loc "'%s' lhs is %s" (Ast.binop_to_string op) (Ast.typ_to_string ta);
      if not (compatible tb Ast.T_int) then
        err env.errors loc "'%s' rhs is %s" (Ast.binop_to_string op) (Ast.typ_to_string tb);
      Ast.T_int

let rec check_block (env : env) (b : Ast.block) : unit =
  let saved = env.vars in
  List.iter (check_stmt env) b;
  env.vars <- saved

and check_stmt (env : env) (stmt : Ast.stmt) : unit =
  let loc = stmt.Ast.sloc in
  match stmt.Ast.s with
  | Ast.Decl (x, ty, init) ->
      (match init with
      | Some e ->
          let t = check_expr env e in
          if not (compatible t ty) then
            err env.errors loc "initialiser of %s has type %s, expected %s" x
              (Ast.typ_to_string t) (Ast.typ_to_string ty)
      | None -> ());
      env.vars <- (x, ty) :: env.vars
  | Ast.Assign (Ast.Lv_var x, e) -> (
      let t = check_expr env e in
      match lookup_var env x with
      | Some tx ->
          if not (compatible t tx) then
            err env.errors loc "assigning %s to %s: %s" (Ast.typ_to_string t) x
              (Ast.typ_to_string tx)
      | None -> err env.errors loc "assignment to unbound variable %s" x)
  | Ast.Assign (Ast.Lv_field (o, f), e) -> (
      let ot = check_expr env o in
      let t = check_expr env e in
      match class_of_typ env ot with
      | None -> ()
      | Some c -> (
          match List.find_opt (fun (fd : Ast.field_decl) -> fd.Ast.f_name = f) c.Ast.c_fields with
          | Some fd ->
              if not (compatible t fd.Ast.f_typ) then
                err env.errors loc "assigning %s to %s.%s: %s" (Ast.typ_to_string t)
                  c.Ast.c_name f
                  (Ast.typ_to_string fd.Ast.f_typ)
          | None -> err env.errors loc "class %s has no field %s" c.Ast.c_name f))
  | Ast.If (c, b1, b2) ->
      let t = check_expr env c in
      if not (compatible t Ast.T_bool) then
        err env.errors loc "if condition has type %s" (Ast.typ_to_string t);
      check_block env b1;
      check_block env b2
  | Ast.While (c, body) ->
      let t = check_expr env c in
      if not (compatible t Ast.T_bool) then
        err env.errors loc "while condition has type %s" (Ast.typ_to_string t);
      let saved = env.in_loop in
      env.in_loop <- true;
      check_block env body;
      env.in_loop <- saved
  | Ast.Return None -> ()
  | Ast.Return (Some e) -> ignore (check_expr env e)
  | Ast.Throw e -> ignore (check_expr env e)
  | Ast.Try (b, x, h) ->
      check_block env b;
      let saved = env.vars in
      env.vars <- (x, Ast.T_any) :: env.vars;
      check_block env h;
      env.vars <- saved
  | Ast.Sync (o, b) ->
      ignore (check_expr env o);
      check_block env b
  | Ast.Expr e -> ignore (check_expr env e)
  | Ast.Assert (c, _) ->
      let t = check_expr env c in
      if not (compatible t Ast.T_bool) then
        err env.errors loc "assert condition has type %s" (Ast.typ_to_string t)
  | Ast.Break -> if not env.in_loop then err env.errors loc "break outside loop"
  | Ast.Continue -> if not env.in_loop then err env.errors loc "continue outside loop"

let check_method (program : Ast.program) (cls : Ast.class_decl option)
    (m : Ast.method_decl) (errors : error list ref) : unit =
  let env =
    { program; cls; vars = m.Ast.m_params; errors; in_loop = false }
  in
  (* duplicate parameter names *)
  let rec dup = function
    | [] -> ()
    | (x, _) :: rest ->
        if List.mem_assoc x rest then
          err errors m.Ast.m_loc "duplicate parameter %s in %s" x m.Ast.m_name;
        dup rest
  in
  dup m.Ast.m_params;
  check_block env m.Ast.m_body

(** Check a whole program; returns the list of errors (empty = clean). *)
let check_program (p : Ast.program) : error list =
  let errors = ref [] in
  (* duplicate class / function names *)
  let rec dup_names what names =
    match names with
    | [] -> ()
    | (n, loc) :: rest ->
        if List.mem_assoc n rest then err errors loc "duplicate %s %s" what n;
        dup_names what rest
  in
  dup_names "class" (List.map (fun (c : Ast.class_decl) -> (c.Ast.c_name, c.Ast.c_loc)) p.Ast.p_classes);
  dup_names "function" (List.map (fun (f : Ast.method_decl) -> (f.Ast.m_name, f.Ast.m_loc)) p.Ast.p_funcs);
  List.iter
    (fun (c : Ast.class_decl) ->
      dup_names "field"
        (List.map (fun (f : Ast.field_decl) -> (c.Ast.c_name ^ "." ^ f.Ast.f_name, f.Ast.f_loc)) c.Ast.c_fields);
      dup_names "method"
        (List.map (fun (m : Ast.method_decl) -> (c.Ast.c_name ^ "." ^ m.Ast.m_name, m.Ast.m_loc)) c.Ast.c_methods);
      List.iter (fun m -> check_method p (Some c) m errors) c.Ast.c_methods)
    p.Ast.p_classes;
  List.iter (fun f -> check_method p None f errors) p.Ast.p_funcs;
  List.rev !errors

let pp_error ppf (e : error) = Fmt.pf ppf "%a: %s" Loc.pp e.loc e.msg

let errors_to_string errs = String.concat "\n" (List.map (Fmt.str "%a" pp_error) errs)
