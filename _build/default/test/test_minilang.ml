(* Tests for the MiniJava frontend and interpreter. *)

open Minilang

let sample_source =
  {|
class Session {
  field id: int;
  field closing: bool = false;
  field ttl: int = 30;
  method init(id: int) {
    this.id = id;
  }
  method isClosing(): bool {
    return this.closing;
  }
}

class Tracker {
  field sessions: map;
  method addSession(s: Session) {
    mapPut(this.sessions, s.id, s);
  }
  method touchSession(sessionId: int): bool {
    var s: Session = mapGet(this.sessions, sessionId);
    if (s == null) {
      return false;
    }
    return true;
  }
}

method makeTracker(): Tracker {
  var t: Tracker = new Tracker();
  return t;
}

method test_touch_existing() {
  var t: Tracker = makeTracker();
  var s: Session = new Session(7);
  t.addSession(s);
  assert (t.touchSession(7), "existing session touches");
  assert (!t.touchSession(8), "missing session does not touch");
}
|}

let parse_sample () = Parser.program ~file:"sample.mj" sample_source

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "if (x == 1) { return; }" in
  let kinds = List.map (fun (t : Lexer.located) -> t.tok) toks in
  Alcotest.(check int) "token count" 11 (List.length kinds);
  (match kinds with
  | Token.KW_IF :: Token.LPAREN :: Token.IDENT "x" :: Token.EQ :: _ -> ()
  | _ -> Alcotest.fail "unexpected token sequence");
  match List.rev kinds with
  | Token.EOF :: _ -> ()
  | _ -> Alcotest.fail "missing EOF"

let test_lexer_comments () =
  let toks = Lexer.tokenize "x // line comment\n/* block\ncomment */ y" in
  let idents =
    List.filter_map
      (fun (t : Lexer.located) ->
        match t.tok with Token.IDENT s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "idents survive comments" [ "x"; "y" ] idents

let test_lexer_string_escapes () =
  let toks = Lexer.tokenize {|"a\nb\"c"|} in
  match toks with
  | { tok = Token.STRING s; _ } :: _ ->
      Alcotest.(check string) "escapes decoded" "a\nb\"c" s
  | _ -> Alcotest.fail "expected string token"

let test_lexer_locations () =
  let toks = Lexer.tokenize "x\n  y" in
  match toks with
  | [ a; b; _eof ] ->
      Alcotest.(check int) "x line" 1 a.Lexer.loc.Loc.line;
      Alcotest.(check int) "y line" 2 b.Lexer.loc.Loc.line;
      Alcotest.(check int) "y col" 3 b.Lexer.loc.Loc.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_error () =
  match Lexer.tokenize "x # y" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error (_, loc) -> Alcotest.(check int) "error column" 3 loc.Loc.col

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_sample () =
  let p = parse_sample () in
  Alcotest.(check int) "classes" 2 (List.length p.Ast.p_classes);
  Alcotest.(check int) "functions" 2 (List.length p.Ast.p_funcs);
  let tracker =
    match Ast.find_class p "Tracker" with Some c -> c | None -> Alcotest.fail "no Tracker"
  in
  Alcotest.(check int) "tracker methods" 2 (List.length tracker.Ast.c_methods)

let test_parse_precedence () =
  let e = Parser.expression "a + b * c == d && e || f" in
  Alcotest.(check string)
    "precedence" "a + b * c == d && e || f" (Pretty.expr_to_string e);
  match e.Ast.e with
  | Ast.Binop (Ast.Or, _, _) -> ()
  | _ -> Alcotest.fail "top must be ||"

let test_parse_unary_chain () =
  let e = Parser.expression "!!x" in
  match e.Ast.e with
  | Ast.Unop (Ast.Not, { e = Ast.Unop (Ast.Not, _); _ }) -> ()
  | _ -> Alcotest.fail "expected !!x"

let test_parse_method_chain () =
  let e = Parser.expression "a.b.c(1).d" in
  match e.Ast.e with
  | Ast.Field ({ e = Ast.Method_call ({ e = Ast.Field _; _ }, "c", [ _ ]); _ }, "d") -> ()
  | _ -> Alcotest.fail "expected chained postfix"

let test_parse_else_if () =
  let p =
    Parser.program
      "method f(x: int): int { if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; } }"
  in
  let f = match Ast.find_func p "f" with Some f -> f | None -> Alcotest.fail "no f" in
  match f.Ast.m_body with
  | [ { s = Ast.If (_, _, [ { s = Ast.If (_, _, [ _ ]); _ } ]); _ } ] -> ()
  | _ -> Alcotest.fail "else-if shape wrong"

let test_parse_error_location () =
  match Parser.program "method f() { if x { } }" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Error (msg, _) ->
      Alcotest.(check bool) "mentions expected token" true
        (Astring_contains.contains msg "expected '('")

let test_sid_stability () =
  let p1 = parse_sample () in
  let p2 = parse_sample () in
  let sids p =
    List.concat_map
      (fun (_, m) -> List.map (fun (s : Ast.stmt) -> s.Ast.sid) (Ast.stmts_of_method m))
      (Ast.methods_of_program p)
  in
  Alcotest.(check (list int)) "sids deterministic" (sids p1) (sids p2);
  let all = sids p1 in
  let sorted = List.sort_uniq compare all in
  Alcotest.(check int) "sids unique" (List.length all) (List.length sorted)

(* ------------------------------------------------------------------ *)
(* Pretty-printer round-trip                                           *)
(* ------------------------------------------------------------------ *)

let rec strip_expr (e : Ast.expr) : Ast.expr = { Ast.e = strip_expr_kind e.Ast.e; eloc = Loc.dummy }

and strip_expr_kind = function
  | Ast.Int_lit n -> Ast.Int_lit n
  | Ast.Bool_lit b -> Ast.Bool_lit b
  | Ast.Str_lit s -> Ast.Str_lit s
  | Ast.Null_lit -> Ast.Null_lit
  | Ast.Var x -> Ast.Var x
  | Ast.This -> Ast.This
  | Ast.Field (o, f) -> Ast.Field (strip_expr o, f)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, strip_expr a, strip_expr b)
  | Ast.Unop (op, a) -> Ast.Unop (op, strip_expr a)
  | Ast.Call (f, args) -> Ast.Call (f, List.map strip_expr args)
  | Ast.Method_call (o, m, args) -> Ast.Method_call (strip_expr o, m, List.map strip_expr args)
  | Ast.New (c, args) -> Ast.New (c, List.map strip_expr args)

let test_program_roundtrip () =
  let p = parse_sample () in
  let printed = Pretty.program_to_string p in
  let p2 = Parser.program printed in
  let printed2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "fixpoint after one print/parse cycle" printed printed2

(* ------------------------------------------------------------------ *)
(* Typechecker                                                         *)
(* ------------------------------------------------------------------ *)

let test_typecheck_clean () =
  let p = parse_sample () in
  let errs = Typecheck.check_program p in
  Alcotest.(check string) "no errors" "" (Typecheck.errors_to_string errs)

let check_errors src expected_fragments =
  let p = Parser.program src in
  let errs = Typecheck.check_program p in
  let text = Typecheck.errors_to_string errs in
  List.iter
    (fun frag ->
      if not (Astring_contains.contains text frag) then
        Alcotest.fail (Fmt.str "expected error mentioning %S, got: %s" frag text))
    expected_fragments

let test_typecheck_unbound_var () =
  check_errors "method f() { x = 1; }" [ "unbound variable x" ]

let test_typecheck_unknown_function () =
  check_errors "method f() { nosuch(); }" [ "unknown function nosuch" ]

let test_typecheck_bad_field () =
  check_errors
    "class C { field a: int; } method f() { var c: C = new C(); c.b = 1; }"
    [ "no field b" ]

let test_typecheck_arity () =
  check_errors "method g(x: int) { } method f() { g(1, 2); }" [ "expects 1 args" ]

let test_typecheck_builtin_arity () =
  check_errors "method f() { mapGet(mapNew()); }" [ "expects 2 args" ]

let test_typecheck_scalar_mismatch () =
  check_errors "method f() { var x: int = 1 + true; }" [ "'+' applied to" ]

let test_typecheck_break_outside_loop () =
  check_errors "method f() { break; }" [ "break outside loop" ]

let test_typecheck_scoping () =
  (* declarations inside a block do not leak out *)
  check_errors "method f() { if (true) { var x: int = 1; } x = 2; }"
    [ "unbound variable x" ]

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let run_expr_fn body =
  let src = Fmt.str "method main(): any { %s }" body in
  let p = Parser.program src in
  let _, v = Interp.run_function p "main" [] in
  v

let test_interp_arith () =
  Alcotest.(check bool) "arith" true
    (Value.equal (run_expr_fn "return (1 + 2 * 3 - 4) / 3;") (Value.V_int 1))

let test_interp_string_concat () =
  Alcotest.(check bool) "concat" true
    (Value.equal (run_expr_fn {|return "a" + "b" + toStr(3);|}) (Value.V_str "ab3"))

let test_interp_short_circuit () =
  (* the 'fail' must not run because of && short-circuit *)
  let v = run_expr_fn {|if (false && mapContains(null, 1)) { return 1; } return 2;|} in
  Alcotest.(check bool) "short circuit" true (Value.equal v (Value.V_int 2))

let test_interp_while_sum () =
  let v =
    run_expr_fn
      "var i: int = 0; var acc: int = 0; while (i < 10) { i = i + 1; acc = acc + i; } return acc;"
  in
  Alcotest.(check bool) "sum 1..10" true (Value.equal v (Value.V_int 55))

let test_interp_break_continue () =
  let v =
    run_expr_fn
      "var i: int = 0; var acc: int = 0; while (true) { i = i + 1; if (i > 5) { break; } if (i % 2 == 0) { continue; } acc = acc + i; } return acc;"
  in
  (* 1 + 3 + 5 = 9 *)
  Alcotest.(check bool) "break/continue" true (Value.equal v (Value.V_int 9))

let test_interp_objects () =
  let p = parse_sample () in
  match Interp.run_test p "test_touch_existing" with
  | Interp.Passed -> ()
  | Interp.Failed m | Interp.Errored m -> Alcotest.fail m

let test_interp_maps_lists () =
  let v =
    run_expr_fn
      {|var m: map = mapNew();
        mapPut(m, "a", 1);
        mapPut(m, "b", 2);
        mapPut(m, "a", 3);
        var l: list = mapKeys(m);
        return mapSize(m) * 100 + listSize(l) * 10 + mapGet(m, "a");|}
  in
  Alcotest.(check bool) "map semantics" true (Value.equal v (Value.V_int 223))

let test_interp_throw_catch () =
  let v =
    run_expr_fn
      {|try { fail("boom"); return 1; } catch (e) { if (e == "boom") { return 2; } return 3; }|}
  in
  Alcotest.(check bool) "throw/catch" true (Value.equal v (Value.V_int 2))

let test_interp_uncaught_throw () =
  let p = Parser.program {|method test_boom() { fail("kaput"); }|} in
  match Interp.run_test p "test_boom" with
  | Interp.Errored m ->
      Alcotest.(check bool) "mentions payload" true (Astring_contains.contains m "kaput")
  | Interp.Passed | Interp.Failed _ -> Alcotest.fail "expected error outcome"

let test_interp_assert_failure () =
  let p = Parser.program {|method test_bad() { assert (1 == 2, "math is broken"); }|} in
  match Interp.run_test p "test_bad" with
  | Interp.Failed m ->
      Alcotest.(check bool) "message kept" true (Astring_contains.contains m "math is broken")
  | Interp.Passed | Interp.Errored _ -> Alcotest.fail "expected failed outcome"

let test_interp_null_deref () =
  let p = Parser.program {|method test_npe() { var s: any = null; s.f = 1; }|} in
  match Interp.run_test p "test_npe" with
  | Interp.Errored m ->
      Alcotest.(check bool) "null deref reported" true
        (Astring_contains.contains m "null dereference")
  | Interp.Passed | Interp.Failed _ -> Alcotest.fail "expected error"

let test_interp_fuel () =
  let p = Parser.program "method test_spin() { while (true) { var x: int = 1; } }" in
  let config = { Interp.default_config with Interp.fuel = 1000 } in
  match Interp.run_test ~config p "test_spin" with
  | Interp.Errored m ->
      Alcotest.(check bool) "fuel exhaustion" true (Astring_contains.contains m "fuel")
  | Interp.Passed | Interp.Failed _ -> Alcotest.fail "expected fuel error"

let test_interp_lock_events () =
  let src =
    {|
class Store {
  field data: map;
  method save(x: int) {
    synchronized (this) {
      writeRecord(x);
    }
  }
}
method main() {
  var s: Store = new Store();
  s.save(42);
}
|}
  in
  let p = Parser.program src in
  let events = ref [] in
  let config =
    { Interp.default_config with Interp.on_event = Some (fun e -> events := e :: !events) }
  in
  ignore (Interp.run_function ~config p "main" []);
  let blocking =
    List.filter_map
      (function
        | Interp.Ev_blocking { op; locks_held; _ } -> Some (op, List.length locks_held)
        | _ -> None)
      !events
  in
  Alcotest.(check (list (pair string int)))
    "blocking under one lock"
    [ ("writeRecord", 1) ]
    blocking

let test_interp_sync_releases_on_throw () =
  let src =
    {|
class Store {
  method bad() {
    synchronized (this) {
      fail("inner");
    }
  }
}
method main(): int {
  var s: Store = new Store();
  try { s.bad(); } catch (e) { }
  // if the lock leaked, a second sync would still work (reentrant model),
  // so instead we observe the unlock event count
  return 0;
}
|}
  in
  let p = Parser.program src in
  let locks = ref 0 and unlocks = ref 0 in
  let config =
    {
      Interp.default_config with
      Interp.on_event =
        Some
          (function
          | Interp.Ev_lock _ -> incr locks
          | Interp.Ev_unlock _ -> incr unlocks
          | _ -> ());
    }
  in
  ignore (Interp.run_function ~config p "main" []);
  Alcotest.(check int) "locks" 1 !locks;
  Alcotest.(check int) "unlocks match locks" !locks !unlocks

let test_interp_deterministic () =
  let p = parse_sample () in
  let run () =
    let st, v = Interp.run_function p "makeTracker" [] in
    (Value.to_string ~heap:st.Interp.heap v, st.Interp.clock)
  in
  Alcotest.(check (pair string int)) "deterministic" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let gen_expr : Ast.expr QCheck.arbitrary =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.map (fun n -> Ast.mk_expr (Ast.Int_lit (abs n mod 1000))) Gen.small_int;
        Gen.map (fun b -> Ast.mk_expr (Ast.Bool_lit b)) Gen.bool;
        Gen.return (Ast.mk_expr Ast.Null_lit);
        Gen.map
          (fun i -> Ast.mk_expr (Ast.Var (Printf.sprintf "v%d" (abs i mod 5))))
          Gen.small_int;
        Gen.return (Ast.mk_expr Ast.This);
      ]
  in
  let rec expr_gen n =
    if n <= 0 then leaf
    else
      Gen.oneof
        [
          leaf;
          Gen.map2
            (fun (op, a) b -> Ast.mk_expr (Ast.Binop (op, a, b)))
            (Gen.pair
               (Gen.oneofl
                  [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.And; Ast.Or ])
               (expr_gen (n / 2)))
            (expr_gen (n / 2));
          Gen.map (fun a -> Ast.mk_expr (Ast.Unop (Ast.Not, a))) (expr_gen (n - 1));
          Gen.map (fun a -> Ast.mk_expr (Ast.Field (a, "f"))) (expr_gen (n - 1));
          Gen.map2
            (fun a b -> Ast.mk_expr (Ast.Method_call (a, "m", [ b ])))
            (expr_gen (n / 2))
            (expr_gen (n / 2));
        ]
  in
  make ~print:(fun e -> Pretty.expr_to_string e) (Gen.sized (fun n -> expr_gen (min n 8)))

let prop_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pretty/parse expression round-trip" gen_expr
    (fun e ->
      let printed = Pretty.expr_to_string e in
      let reparsed = Parser.expression printed in
      strip_expr reparsed = strip_expr e)

let prop_tokenize_print_stable =
  QCheck.Test.make ~count:300 ~name:"expression printing is a fixpoint" gen_expr
    (fun e ->
      let p1 = Pretty.expr_to_string e in
      let p2 = Pretty.expr_to_string (Parser.expression p1) in
      String.equal p1 p2)

let suite =
  [
    ( "minilang.lexer",
      [
        Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
        Alcotest.test_case "comments" `Quick test_lexer_comments;
        Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
        Alcotest.test_case "locations" `Quick test_lexer_locations;
        Alcotest.test_case "error location" `Quick test_lexer_error;
      ] );
    ( "minilang.parser",
      [
        Alcotest.test_case "sample program" `Quick test_parse_sample;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "unary chain" `Quick test_parse_unary_chain;
        Alcotest.test_case "postfix chain" `Quick test_parse_method_chain;
        Alcotest.test_case "else-if" `Quick test_parse_else_if;
        Alcotest.test_case "error messages" `Quick test_parse_error_location;
        Alcotest.test_case "sid stability" `Quick test_sid_stability;
        Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip;
      ] );
    ( "minilang.typecheck",
      [
        Alcotest.test_case "clean program" `Quick test_typecheck_clean;
        Alcotest.test_case "unbound variable" `Quick test_typecheck_unbound_var;
        Alcotest.test_case "unknown function" `Quick test_typecheck_unknown_function;
        Alcotest.test_case "bad field" `Quick test_typecheck_bad_field;
        Alcotest.test_case "arity" `Quick test_typecheck_arity;
        Alcotest.test_case "builtin arity" `Quick test_typecheck_builtin_arity;
        Alcotest.test_case "scalar mismatch" `Quick test_typecheck_scalar_mismatch;
        Alcotest.test_case "break outside loop" `Quick test_typecheck_break_outside_loop;
        Alcotest.test_case "block scoping" `Quick test_typecheck_scoping;
      ] );
    ( "minilang.interp",
      [
        Alcotest.test_case "arithmetic" `Quick test_interp_arith;
        Alcotest.test_case "string concat" `Quick test_interp_string_concat;
        Alcotest.test_case "short circuit" `Quick test_interp_short_circuit;
        Alcotest.test_case "while sum" `Quick test_interp_while_sum;
        Alcotest.test_case "break/continue" `Quick test_interp_break_continue;
        Alcotest.test_case "objects" `Quick test_interp_objects;
        Alcotest.test_case "maps and lists" `Quick test_interp_maps_lists;
        Alcotest.test_case "throw/catch" `Quick test_interp_throw_catch;
        Alcotest.test_case "uncaught throw" `Quick test_interp_uncaught_throw;
        Alcotest.test_case "assert failure" `Quick test_interp_assert_failure;
        Alcotest.test_case "null deref" `Quick test_interp_null_deref;
        Alcotest.test_case "fuel" `Quick test_interp_fuel;
        Alcotest.test_case "lock events" `Quick test_interp_lock_events;
        Alcotest.test_case "sync releases on throw" `Quick test_interp_sync_releases_on_throw;
        Alcotest.test_case "determinism" `Quick test_interp_deterministic;
      ] );
    ( "minilang.properties",
      [
        QCheck_alcotest.to_alcotest prop_expr_roundtrip;
        QCheck_alcotest.to_alcotest prop_tokenize_print_stable;
      ] );
  ]
