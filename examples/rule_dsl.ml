(* §5 open question (ii): "can we provide a better interface for developers
   to encode low-level semantics?"

   Instead of mining rules from tickets, a developer writes them directly
   in the structured rule language and enforces them like any mined rule.

   Run with: dune exec examples/rule_dsl.exe *)

let rules_text =
  {|# Rules a ZooKeeper developer might write by hand.

rule zk.ephemeral-closing:
  because "every ephemeral node dies with its session"
  when calling createEphemeralNode
  require Session != null && Session.closing == false

rule zk.no-io-under-locks:
  because "writers must never stall behind a monitor"
  forbid blocking under lock
|}

let () =
  print_endline "developer-authored rules:";
  print_endline rules_text;

  (* 1. parse the DSL *)
  let rules = Semantics.Dsl.parse rules_text in
  List.iter (fun r -> print_endline ("parsed: " ^ Semantics.Rule.to_string r)) rules;

  (* 2. round-trip check: printing and re-parsing is stable *)
  let printed = Semantics.Dsl.print_rules rules in
  assert (Semantics.Dsl.parse printed = rules);
  print_endline "\n(the DSL round-trips: print . parse = id)\n";

  (* 3. enforce them on the regressed ZooKeeper versions from the corpus *)
  let enforce case_id stage =
    let c =
      match Corpus.Registry.find_case case_id with
      | Some c -> c
      | None -> failwith "corpus case missing"
    in
    let program = Corpus.Case.program_at c stage in
    Fmt.pr "--- %s stage %d ---@." case_id stage;
    List.iter
      (fun rule ->
        let report = Lisa.Checker.check_rule program rule in
        Fmt.pr "%s@." (Lisa.Checker.report_summary report);
        List.iter
          (fun (t : Lisa.Checker.trace_verdict) ->
            match t.Lisa.Checker.tv_result with
            | Smt.Solver.Violation m ->
                Fmt.pr "  VIOLATION in %s: %s@." t.Lisa.Checker.tv_method
                  (Smt.Solver.model_to_string m)
            | Smt.Solver.Verified | Smt.Solver.Undecided _ -> ())
          report.Lisa.Checker.rep_violations;
        List.iter
          (fun (f : Lisa.Checker.lock_finding) ->
            Fmt.pr "  LOCK VIOLATION: %s performs %s under a monitor@."
              f.Lisa.Checker.lf_method f.Lisa.Checker.lf_op)
          report.Lisa.Checker.rep_lock_findings)
      rules
  in
  (* the ephemeral rule catches the ZK-1496 path; the lock rule catches the
     ZK-3531 ACL-cache serialization *)
  enforce "zk-ephemeral" 2;
  enforce "zk-serialize-lock" 2
