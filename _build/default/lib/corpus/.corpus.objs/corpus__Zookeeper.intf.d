lib/corpus/zookeeper.mli: Case
