(** Static lock-scope analysis: blocking operations under monitors.

    The static half of the Figure 6 rule family ("no blocking I/O within
    synchronized blocks").  A violation is a blocking builtin called
    lexically inside a [synchronized] block, or a call inside one to a
    method that may (transitively) block. *)

type violation = {
  v_method : string;  (** method containing the synchronized block *)
  v_sync_sid : int;  (** the synchronized statement *)
  v_sid : int;  (** the offending statement *)
  v_op : string;  (** blocking builtin, or the may-block callee *)
  v_direct : bool;  (** true when the blocking builtin is lexical *)
}

(** The may-block predicate over qualified method names. *)
val method_may_block : Minilang.Ast.program -> Callgraph.t -> string -> bool

(** All blocking-under-lock violations of a program. *)
val analyze : Minilang.Ast.program -> violation list

val violation_to_string : violation -> string
