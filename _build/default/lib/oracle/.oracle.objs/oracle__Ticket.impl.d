lib/oracle/ticket.ml: Diffing Fmt Minilang
