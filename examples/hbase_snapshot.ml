(* Reproduction of the paper's Bug #1 (§4, HBASE-29296):

   In HBase it is crucial to prevent expired snapshots from being used.
   HBASE-27671 and HBASE-28704 added expiration checks to the restore and
   export paths, yet "users still observed expired snapshots returning to
   clients successfully without generating any alarms."  Learning the TTL
   contract from the closed tickets and scanning the latest release finds
   the copy-table path with no check — the fix the authors proposed and
   HBase developers accepted.

   Run with: dune exec examples/hbase_snapshot.exe *)

let () =
  let case =
    match Corpus.Registry.find_case "hbase-snapshot-ttl" with
    | Some c -> c
    | None -> failwith "corpus case missing"
  in

  Fmt.pr "known history of the snapshot-TTL semantic:@.";
  List.iter
    (fun t -> Fmt.pr "  %s@." (Oracle.Ticket.summary t))
    (Corpus.Case.tickets case);

  (* learn from every ticket closed before the "latest" release *)
  let closed_tickets =
    List.filter
      (fun (t : Oracle.Ticket.t) -> t.Oracle.Ticket.ticket_id <> "HBASE-29296")
      (Corpus.Case.tickets case)
  in
  let book, outcomes = Lisa.Pipeline.learn_all ~system:"hbase" closed_tickets in
  Fmt.pr "@.rulebook learned from the closed tickets:@.%s@."
    (Semantics.Rulebook.to_string book);
  List.iter
    (fun (o : Lisa.Pipeline.outcome) ->
      List.iter
        (fun (r, why) ->
          Fmt.pr "  (rejected %s: %s)@." r.Semantics.Rule.rule_id why)
        o.Lisa.Pipeline.rejected)
    outcomes;

  (* scan the latest release (stage 4 = HBase @5dafa9e in the paper) *)
  let latest = Corpus.Case.program_at case case.Corpus.Case.latest_stage in
  Fmt.pr "@.scanning the latest release...@.";
  let reports = Lisa.Pipeline.enforce latest book in
  let found = ref false in
  List.iter
    (fun (r : Lisa.Checker.rule_report) ->
      List.iter
        (fun (t : Lisa.Checker.trace_verdict) ->
          match t.Lisa.Checker.tv_result with
          | Smt.Solver.Violation m ->
              found := true;
              Fmt.pr
                "NEW BUG: %s serves snapshots without the expiration check@.\
                \  driven by existing test: %s@.\
                \  a state admitted by the path: %s@."
                t.Lisa.Checker.tv_method t.Lisa.Checker.tv_entry
                (Smt.Solver.model_to_string m)
          | Smt.Solver.Verified | Smt.Solver.Undecided _ -> ())
        r.Lisa.Checker.rep_violations)
    reports;
  if !found then begin
    Fmt.pr
      "@.-> this is HBASE-29296: \"Missing critical snapshot expiration checks\".@.";
    (* the paper proposed the fix and HBase developers accepted it; the
       synthesizer produces and verifies it mechanically *)
    let cf = Lisa.Fix.fix_unknown_bug "hbase-snapshot-ttl" in
    Fmt.pr "@.%s@." (Lisa.Fix.print_case_fixes cf);
    match cf.Lisa.Fix.cf_proposals with
    | ((p : Lisa.Fix.proposal), _) :: _ ->
        Fmt.pr "the diff a maintainer reviews:@.%s@." p.Lisa.Fix.fp_diff
    | [] -> ()
  end
  else Fmt.pr "no violation found (unexpected)@."
