(** Generic hash-cons tables.

    A table maps *shallow nodes* (whose children, if any, are already
    interned) to unique *elements* carrying a per-node id and the node's
    precomputed structural hash.  Interning the same node twice returns
    the physically same element, so for hash-consed types physical
    equality coincides with structural equality and [equal]/[hash]/
    [compare] are O(1).

    Invariants:
    - ids are unique per table and never reused, so id equality implies
      structural equality for the table's whole lifetime;
    - entries are never evicted — eviction would allow two live,
      structurally equal elements with different ids, breaking the
      physical-equality invariant.  Tables grow monotonically, bounded
      by the number of distinct nodes built in the process;
    - ids depend on interning order and therefore on scheduling under
      the engine's domain pool.  Never let ids influence output
      ordering or anything compared across processes; the caller's
      [hkey] (structural, deterministic) is the cross-run-stable hash.

    Thread safety: every operation takes the table's mutex, mirroring
    [Smt.Memo] — safe under the engine's [--jobs N] domain pool. *)

type stats = { hits : int; misses : int; size : int }

type ('node, 'elt) t

(** [create ~name ~equal ~build ()] — [equal] is *shallow* equality
    between a candidate node and a stored element (children compared
    physically); [build ~id ~hkey node] constructs the element for a
    fresh node.  [name] keys the table in {!registry}. *)
val create :
  name:string ->
  equal:('node -> 'elt -> bool) ->
  build:(id:int -> hkey:int -> 'node -> 'elt) ->
  unit ->
  ('node, 'elt) t

(** [intern t ~hkey node] returns the unique element for [node], building
    it on first sight.  [hkey] must be a deterministic structural hash of
    [node] (computed from the children's stored hashes). *)
val intern : ('node, 'elt) t -> hkey:int -> 'node -> 'elt

val name : _ t -> string

val stats : _ t -> stats

(** Hit/miss/size of every table created so far, in creation order. *)
val registry : unit -> (string * stats) list
