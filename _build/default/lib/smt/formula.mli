(** Quantifier-free checker formulas over implementation-local predicates.

    This is the condition language of low-level semantics (paper §3.1):
    conjunctions/disjunctions of state relations ([v = c]), null-ness
    ([s != null]), boolean observers ([s.closing == false]) and integer
    bounds ([s.ttl > 0]).  Variables are dotted state paths such as
    ["Session.closing"]. *)

(** Terms: flat — a state variable or a constant. *)
type term =
  | T_var of string  (** a state variable, e.g. ["s.ttl"] *)
  | T_int of int
  | T_bool of bool
  | T_str of string
  | T_null

(** Binary relations between terms. *)
type rel = Req | Rneq | Rlt | Rle | Rgt | Rge

type atom = { rel : rel; lhs : term; rhs : term }

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list
  | Or of t list

(** {1 Constructors} *)

val tvar : string -> term

val tint : int -> term

val tbool : bool -> term

val tstr : string -> term

val tnull : term

val atom : rel -> term -> term -> t

val eq : term -> term -> t

val neq : term -> term -> t

val lt : term -> term -> t

val le : term -> term -> t

val gt : term -> term -> t

val ge : term -> term -> t

(** Boolean state variable asserted true: [bvar x] is [x == true]. *)
val bvar : string -> t

(** N-ary conjunction; [conj []] is [True], singletons are unwrapped. *)
val conj : t list -> t

(** N-ary disjunction; [disj []] is [False]. *)
val disj : t list -> t

val negate : t -> t

(** {1 Structure} *)

val term_compare : term -> term -> int

val term_equal : term -> term -> bool

(** The relation with swapped operands ([<] becomes [>], ...). *)
val flip_rel : rel -> rel

(** The relation satisfied exactly when the argument is not. *)
val negate_rel : rel -> rel

(** Canonical form: [>]/[>=] rewritten to [<]/[<=] by swapping; symmetric
    relations get sorted operands.  Canonical atoms are the identity used
    by the DPLL abstraction. *)
val canon_atom : atom -> atom

val atom_equal : atom -> atom -> bool

(** All distinct canonical atoms, in first-occurrence order. *)
val atoms : t -> atom list

(** Free state variables, in first-occurrence order. *)
val variables : t -> string list

val size : t -> int

(** {1 Ground evaluation} (used to cross-check the solver in tests) *)

type value = V_int of int | V_bool of bool | V_str of string | V_null

val value_of_term : (string * value) list -> term -> value option

val eval_atom : (string * value) list -> atom -> bool option

(** [None] when a variable is unbound or an order atom compares
    non-integers. *)
val eval : (string * value) list -> t -> bool option

(** {1 Printing} *)

val term_to_string : term -> string

val rel_to_string : rel -> string

val atom_to_string : atom -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Normal forms} *)

(** Negation normal form; the result contains no [Not] (negations are
    folded into atom relations). *)
val nnf : t -> t

(** Semantics-preserving simplification: constant folding, flattening,
    duplicate removal, complementary-literal detection. *)
val simplify : t -> t
