(** Global string interner.

    [get] returns the canonical, physically shared copy of a string
    together with a stable id and a precomputed hash, so downstream
    hash-cons tables (variable names in [Smt.Formula] terms) compare
    symbols with [==] and never rehash the characters.

    Process-global, built directly on a sharded {!Hc} table: warm
    lookups probe a lock-free bucket snapshot, only first-sight inserts
    take the owning shard's lock.  The same invariants as {!Hc} apply
    (ids are interning-order-dependent, hashes are structural). *)

type sym = private {
  str : string;  (** the canonical copy; physically shared across [get]s *)
  sym_id : int;
  sym_hash : int;  (** structural hash of [str], precomputed *)
}

val get : string -> sym

(** The canonical copy of [s] ([(canonical s) == (canonical s)]). *)
val canonical : string -> string

val equal : sym -> sym -> bool

val stats : unit -> Hc.stats
