(** Theory solver: decides consistency of a *conjunction of literals*.

    The fragment is what low-level semantics need (paper §3.1):

    - equality/disequality between variables and constants of any sort
      (ints, bools, strings, [null]), decided by congruence-free
      union-find (terms are flat, so no congruence closure is needed);
    - integer order constraints ([x < y], [x <= 3], ...), decided as
      difference-bound constraints with a Floyd–Warshall closure
      (every constraint is of the form [t1 - t2 <= c] over term nodes,
      with a distinguished ZERO node for constants).

    Mixed-sort comparisons (e.g. ordering strings) make the literal set
    inconsistent, mirroring how Z3 would reject ill-sorted formulas;
    subject-system rules never produce them. *)

type lit = { atom : Formula.atom; sign : bool }

let lit (sign : bool) (atom : Formula.atom) : lit = { atom; sign }

(* effective relation of a literal *)
let rel_of (l : lit) : Formula.rel =
  if l.sign then l.atom.Formula.rel else Formula.negate_rel l.atom.Formula.rel

(* ------------------------------------------------------------------ *)
(* Node table: terms to dense ids                                      *)
(* ------------------------------------------------------------------ *)

(* Interned terms carry a process-global unique id, so the dense-id
   lookup is one O(1) hash probe instead of the old linear scan. *)
type node_table = {
  ids : (int, int) Hashtbl.t;  (** [Formula.term_id] -> dense id *)
  mutable nodes : Formula.term array;  (** dense id -> term *)
  mutable count : int;
}

let node_table () = { ids = Hashtbl.create 16; nodes = [||]; count = 0 }

let node_id (tbl : node_table) (t : Formula.term) : int =
  match Hashtbl.find_opt tbl.ids (Formula.term_id t) with
  | Some id -> id
  | None ->
      if tbl.count >= Array.length tbl.nodes then begin
        let grown = Array.make (max 8 (2 * tbl.count)) t in
        Array.blit tbl.nodes 0 grown 0 tbl.count;
        tbl.nodes <- grown
      end;
      tbl.nodes.(tbl.count) <- t;
      Hashtbl.add tbl.ids (Formula.term_id t) tbl.count;
      tbl.count <- tbl.count + 1;
      tbl.count - 1

let node_term (tbl : node_table) (id : int) : Formula.term = tbl.nodes.(id)

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

type uf = int array

let uf_create n : uf = Array.init n (fun i -> i)

let rec uf_find (u : uf) i = if u.(i) = i then i else (
  let r = uf_find u u.(i) in
  u.(i) <- r;
  r)

let uf_union (u : uf) i j =
  let ri = uf_find u i and rj = uf_find u j in
  if ri <> rj then u.(ri) <- rj

(* ------------------------------------------------------------------ *)
(* Consistency check                                                   *)
(* ------------------------------------------------------------------ *)

let is_const (t : Formula.term) =
  match Formula.term_view t with
  | Formula.T_int _ | Formula.T_bool _ | Formula.T_str _ | Formula.T_null -> true
  | Formula.T_var _ -> false

let const_conflict (a : Formula.term) (b : Formula.term) : bool =
  (* two constants that denote distinct values *)
  is_const a && is_const b && not (Formula.term_equal a b)

exception Inconsistent

(** [consistent lits] decides whether the conjunction of [lits] has a
    model.  The procedure is sound and complete for the supported
    fragment (flat terms; int order constraints; cross-sort equalities). *)
let consistent (lits : lit list) : bool =
  let tbl = node_table () in
  (* intern all terms *)
  let interned =
    List.map
      (fun l ->
        let i = node_id tbl l.atom.Formula.lhs in
        let j = node_id tbl l.atom.Formula.rhs in
        (l, i, j))
      lits
  in
  let n = tbl.count in
  if n = 0 then true
  else
    try
      let u = uf_create n in
      (* 1. process equalities *)
      List.iter
        (fun (l, i, j) -> if rel_of l = Formula.Req then uf_union u i j)
        interned;
      (* 2. each class must not contain two distinct constants *)
      let class_const = Array.make n None in
      for i = 0 to n - 1 do
        let t = node_term tbl i in
        if is_const t then begin
          let r = uf_find u i in
          match class_const.(r) with
          | None -> class_const.(r) <- Some t
          | Some t' -> if const_conflict t t' then raise Inconsistent
        end
      done;
      (* 3. disequalities must split classes *)
      List.iter
        (fun (l, i, j) ->
          if rel_of l = Formula.Rneq && uf_find u i = uf_find u j then raise Inconsistent)
        interned;
      (* 3b. boolean finite domain.  In the (typed) source language a term
         compared against a bool constant is itself boolean, so a class
         that is disequal to both [true] and [false] (and does not already
         contain a bool constant) has an empty domain. *)
      let deq_bools = Hashtbl.create 8 in
      List.iter
        (fun (l, i, j) ->
          if rel_of l = Formula.Rneq then begin
            let note id other =
              (* the other side denotes a bool constant if its class holds one *)
              match Option.map Formula.term_view class_const.(uf_find u other) with
              | Some (Formula.T_bool bv) ->
                  let r = uf_find u id in
                  let seen = try Hashtbl.find deq_bools r with Not_found -> [] in
                  if not (List.mem bv seen) then Hashtbl.replace deq_bools r (bv :: seen)
              | Some _ | None -> ()
            in
            note i j;
            note j i
          end)
        interned;
      Hashtbl.iter
        (fun r bools ->
          if List.mem true bools && List.mem false bools then
            match Option.map Formula.term_view class_const.(r) with
            | Some (Formula.T_bool _) ->
                (* contains a bool constant and is disequal to it: already
                   caught by step 3 if it is the same constant; a class
                   holding [true] that is disequal to [false] is fine. *)
                ()
            | Some _ | None -> raise Inconsistent)
        deq_bools;
      (* 4. integer order constraints as difference bounds on class reps.
         dist.(i).(j) = c encodes  term_i - term_j <= c. *)
      let order_lits =
        List.filter
          (fun (l, _, _) ->
            match rel_of l with
            | Formula.Rlt | Formula.Rle | Formula.Rgt | Formula.Rge -> true
            | Formula.Req | Formula.Rneq -> false)
          interned
      in
      let int_eq_lits =
        (* equalities between int-sorted terms also induce bounds *)
        List.filter
          (fun (l, i, j) ->
            rel_of l = Formula.Req
            &&
            let int_term id =
              match Formula.term_view (node_term tbl id) with
              | Formula.T_int _ -> true
              | Formula.T_var _ -> true (* variables may be ints *)
              | _ -> false
            in
            int_term i && int_term j)
          interned
      in
      if order_lits <> [] then begin
        (* sort check: order constraints only over int-sorted terms — a
           participant that is (or is forced equal to) a bool/str/null
           constant makes the conjunction ill-sorted *)
        List.iter
          (fun (_, i, j) ->
            let ok id =
              (match Formula.term_view (node_term tbl id) with
              | Formula.T_var _ | Formula.T_int _ -> true
              | Formula.T_bool _ | Formula.T_str _ | Formula.T_null -> false)
              &&
              match Option.map Formula.term_view class_const.(uf_find u id) with
              | Some (Formula.T_bool _ | Formula.T_str _ | Formula.T_null) -> false
              | Some (Formula.T_int _ | Formula.T_var _) | None -> true
            in
            if not (ok i && ok j) then raise Inconsistent)
          order_lits;
        let zero = n in
        let m = n + 1 in
        let inf = max_int / 4 in
        let dist = Array.make_matrix m m inf in
        for i = 0 to m - 1 do
          dist.(i).(i) <- 0
        done;
        let add_edge i j c = if c < dist.(i).(j) then dist.(i).(j) <- c in
        (* constants pin their node to ZERO *)
        for i = 0 to n - 1 do
          match Formula.term_view (node_term tbl i) with
          | Formula.T_int v ->
              add_edge i zero v;
              add_edge zero i (-v)
          | Formula.T_var _ | Formula.T_bool _ | Formula.T_str _ | Formula.T_null -> ()
        done;
        (* equal classes share bounds: rep edges both ways with 0 *)
        List.iter
          (fun (_, i, j) ->
            add_edge i j 0;
            add_edge j i 0)
          int_eq_lits;
        List.iter
          (fun (l, i, j) ->
            match rel_of l with
            | Formula.Rlt -> add_edge i j (-1) (* i - j <= -1 *)
            | Formula.Rle -> add_edge i j 0
            | Formula.Rgt -> add_edge j i (-1)
            | Formula.Rge -> add_edge j i 0
            | Formula.Req | Formula.Rneq -> ())
          order_lits;
        (* Floyd–Warshall *)
        for k = 0 to m - 1 do
          for i = 0 to m - 1 do
            for j = 0 to m - 1 do
              if dist.(i).(k) + dist.(k).(j) < dist.(i).(j) then
                dist.(i).(j) <- dist.(i).(k) + dist.(k).(j)
            done
          done
        done;
        (* negative cycle -> unsat *)
        for i = 0 to m - 1 do
          if dist.(i).(i) < 0 then raise Inconsistent
        done;
        (* disequalities between int terms forced equal by bounds *)
        List.iter
          (fun (l, i, j) ->
            if
              rel_of l = Formula.Rneq
              && dist.(i).(j) <= 0
              && dist.(j).(i) <= 0
            then raise Inconsistent)
          interned
      end;
      true
    with Inconsistent -> false

(* ------------------------------------------------------------------ *)
(* Conflict cores                                                      *)
(* ------------------------------------------------------------------ *)

(* Greedy deletion minimization: drop one literal at a time, keeping the
   drop whenever the remainder is still inconsistent.  The result is a
   locally minimal inconsistent core — every remaining literal is
   necessary — which makes the solver's learned conflict sets prune far
   more sibling branches than the full assignment would.  Bounded: sets
   larger than [max_core_lits] are returned unchanged (the quadratic
   re-checking would cost more than the pruning saves), and a consistent
   input is returned unchanged (learning a consistent set as a conflict
   would be unsound, so we re-verify rather than trust the caller). *)
let max_core_lits = 16

let conflict_core (lits : lit list) : lit list =
  if List.length lits > max_core_lits || consistent lits then lits
  else
    let rec shrink kept = function
      | [] -> List.rev kept
      | l :: rest ->
          if consistent (List.rev_append kept rest) then shrink (l :: kept) rest
          else shrink kept rest
    in
    shrink [] lits
