(** The serve wire protocol: JSONL requests and responses (one JSON
    object per line) over stdin/stdout or a Unix socket.  See
    [lib/serve/README.md] for the full specification with example
    exchanges. *)

(** Bumped whenever the wire or cache-entry format changes; baked into
    response-cache keys so stale semantics never serve a new client. *)
val version : int

type op =
  | Enforce  (** run the enforcement engine (the default) *)
  | Ping
  | Stats  (** server counters *)
  | Save  (** persist warm caches now *)
  | Shutdown  (** drain and exit cleanly *)

type request = {
  req_id : string;  (** client correlation id, echoed on every response *)
  req_tenant : string;  (** fairness/breaker unit; default ["default"] *)
  req_op : op;
  req_system : string option;  (** subject system, e.g. ["zookeeper"] *)
  req_case : string option;
      (** corpus case id: scope the rulebook to this case's ticket
          bundle (description + discussion + diff + regression tests)
          instead of the whole system book *)
  req_ticket : int;  (** which ticket of the case (default 0) *)
  req_version : int option;  (** target release to enforce against *)
}

(** The release-verdict part of a response — everything the
    warm-vs-cold byte-identity gate compares (no timings, no cache
    provenance). *)
type summary = {
  sum_verdict : string;  (** "clean" or "violations" *)
  sum_findings : string list;  (** violating rule ids, rulebook order *)
  sum_degraded : string list;  (** rule ids with lossy reports *)
  sum_traces : int;  (** traces judged *)
  sum_rules : int;  (** rulebook size enforced *)
  sum_tiers : (string * string) list;
      (** v2: witness-replay tier per violating rule id ("witnessed",
          "consistent" or "likely-fp"); [[]] when triage did not run —
          and then the wire form is byte-identical to v1 *)
}

type run_stats = {
  rs_queue_ms : float;  (** admission-queue wait *)
  rs_run_ms : float;  (** enforcement wall time *)
  rs_jobs_run : int;
  rs_report_hits : int;
  rs_smt_hits : int;
  rs_solver_calls : int;
}

type response =
  | Ok_enforce of {
      id : string;
      tenant : string;
      summary : summary;
      cached : bool;  (** served from the warm response cache *)
      stats : run_stats;
    }
  | Ok_ping of { id : string; tenant : string }
  | Ok_stats of { id : string; tenant : string; fields : (string * int) list }
  | Ok_saved of { id : string; tenant : string; entries : int }
  | Ok_shutdown of { id : string; tenant : string }
  | Overloaded of { id : string; tenant : string; depth : int }
      (** shed at admission: queue full; retry later *)
  | Rejected of { id : string; tenant : string; reason : string }
      (** refused before running, e.g. ["breaker_open"] *)
  | Error_resp of { id : string; tenant : string; message : string }

val parse_request : string -> (request, string) result

(** Parse a rendered response line back into a {!response}.  Tolerant
    like {!parse_request}: unknown fields are ignored and missing
    optional fields default — in particular a v1 (tier-less) enforce
    payload parses with [sum_tiers = []], so new clients interoperate
    with old servers. *)
val parse_response : string -> (response, string) result

(** One compact JSON object, no trailing newline; field order is fixed
    so identical verdicts render byte-identically. *)
val render_response : response -> string

val response_id : response -> string

(** Stable comparison key for the byte-identity gates: id, status, and
    the full {!summary} — deliberately excluding timings and the
    [cached] flag, which legitimately differ between cold and warm. *)
val verdict_signature : response -> string
