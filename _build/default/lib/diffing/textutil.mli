(** Small text helpers shared by the diffing and oracle layers. *)

(** Contiguous-substring test. *)
val contains_sub : string -> string -> bool

(** Lower-case ASCII copy. *)
val lowercase : string -> string

(** Identifier-aware tokenizer: lower-cased word tokens with camelCase and
    snake_case identifiers split into components; 1-character tokens are
    dropped.  The shared tokenizer for TF-IDF and keyword extraction. *)
val word_tokens : string -> string list
