(** Seeded procedural corpus generator (the ROADMAP's scale-out axis).

    Composes the paper's four recurring bug-pattern families — missing
    state guard, TTL/expiry check, blocking I/O in lock scope, observer
    staleness — into synthetic MiniJava systems with staged histories,
    matching tickets, diffs, regression tests, and green baselines.
    Every generated case is a structural sibling of a hand-written
    {!Registry.builtin} case, so it passes {!Case.validate} and flows
    through the unchanged pipeline: learn from the stage-1 ticket,
    detect the planted regression at stage 2, go clean at stage 3.

    Determinism contract: everything is a pure function of [(seed, k)]
    where [k] is the global case index.  Case [k] is byte-identical in
    every registry that contains it, regardless of [scale], so a fuzzer
    repro is just [lisa corpus synth --seed N --case K].  No wall clock,
    no global RNG — an LCG stream per case, split so that knob
    overrides (the minimizer) never shift unrelated draws. *)

let sf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Deterministic RNG                                                   *)
(* ------------------------------------------------------------------ *)

module Rng = struct
  type t = { mutable s : int }

  let make seed = { s = (seed land 0x3FFFFFFF) lor 1 }

  let next r =
    r.s <- ((r.s * 1664525) + 1013904223) land 0x3FFFFFFF;
    r.s

  let int r n = if n <= 0 then 0 else (next r lsr 7) mod n
  let pick r arr = arr.(int r (Array.length arr))
  let range r lo hi = lo + int r (hi - lo + 1)
end

(* Split one user seed into independent per-case streams. *)
let case_seed seed k =
  ((seed * 1_000_003) lxor ((k + 1) * 0x61C8864F)) land 0x3FFFFFFF

(* ------------------------------------------------------------------ *)
(* Families and knobs                                                  *)
(* ------------------------------------------------------------------ *)

type family = State_guard | Ttl_expiry | Lock_io | Observer_stale

let families = [ State_guard; Ttl_expiry; Lock_io; Observer_stale ]
let cases_per_system = List.length families

let family_name = function
  | State_guard -> "guard"
  | Ttl_expiry -> "ttl"
  | Lock_io -> "lock"
  | Observer_stale -> "observer"

type knobs = {
  k_aux_tests : int;  (** 0-2 extra benign tests *)
  k_fixture_extra : int;  (** 0-2 extra healthy fixture entries *)
  k_helper : bool;  (** decorative read-only helper method *)
}

let min_knobs = { k_aux_tests = 0; k_fixture_extra = 0; k_helper = false }

let knobs_at ~seed k =
  (* separate stream: overriding knobs must not shift identifier draws *)
  let r = Rng.make (case_seed seed k lxor 0x5BD1E99) in
  {
    k_aux_tests = Rng.int r 3;
    k_fixture_extra = Rng.int r 3;
    k_helper = Rng.int r 2 = 0;
  }

(* ------------------------------------------------------------------ *)
(* Name pools                                                          *)
(* ------------------------------------------------------------------ *)

let system_nouns =
  [|
    "ledger"; "quorum"; "vault"; "mesh"; "relay"; "atlas"; "beacon"; "harbor";
    "garnet"; "onyx"; "krait"; "fjord"; "cinder"; "drift"; "ember"; "flint";
  |]

let capitalize s = String.capitalize_ascii s

(* ------------------------------------------------------------------ *)
(* Template: missing state guard (hdfs-safemode sibling)               *)
(* ------------------------------------------------------------------ *)

let gen_state_guard r ~system ~tag ~ids ~knobs =
  let mgr = Rng.pick r [| "Registry"; "Catalog"; "Journal"; "Directory" |] in
  let flag, flag_cap, exc =
    Rng.pick r
      [|
        ("frozen", "Frozen", "FrozenStateException");
        ("sealedUp", "SealedUp", "SealedStateException");
        ("readonly", "Readonly", "ReadOnlyModeException");
        ("draining", "Draining", "DrainingModeException");
      |]
  in
  let op1 = Rng.pick r [| "admit"; "record"; "enlist"; "post" |] in
  let op2 =
    Rng.pick r [| "merge"; "compactInto"; "fold"; "absorb" |]
  in
  let reason =
    Rng.pick r
      [| "bulk imports"; "mirror sync"; "small-entry compaction"; "rollup" |]
  in
  let v1 = Rng.range r 1 9 in
  let mgr_c = sf "%s%s" mgr tag in
  let t = String.lowercase_ascii tag in
  let guard = sf {|    if (this.is%s()) {
      throw "%s";
    }|} flag_cap exc in
  let id1, id2 = ids in
  let source stage =
    let guard1 = stage >= 1 in
    let path2 = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         sf {|// %s: %s lifecycle writes
class %s {
  field %s: bool = false;
  field entries: map;
  field mutations: int = 0;
  method is%s(): bool {
    return this.%s;
  }
  // common mutation application: every write path ends here
  method applyWrite(key: str, v: int) {
    mapPut(this.entries, key, v);
    this.mutations = this.mutations + 1;
  }
  method enter%s() {
    this.%s = true;
  }
  method leave%s() {
    this.%s = false;
  }
  method entryCount(): int {
    return mapSize(this.entries);
  }
  method getEntry(key: str): int {
    if (!mapContains(this.entries, key)) {
      throw "EntryNotFoundException";
    }
    var v: int = mapGet(this.entries, key);
    return v;
  }|}
           system (String.lowercase_ascii mgr) mgr_c flag flag_cap flag
           flag_cap flag flag_cap flag;
       ]
      @ (if knobs.k_helper then
           [
             {|  method hasEntry(key: str): bool {
    return mapContains(this.entries, key);
  }|};
           ]
         else [])
      @ [ sf {|  method %s(key: str) {|} op1 ]
      @ (if guard1 then [ guard ] else [])
      @ [ sf {|    this.applyWrite(key, %d);
  }|} v1 ]
      @ (if path2 then
           [ sf {|  method %s(key: str, other: str) {|} op2 ]
           @ (if guard2 then [ guard ] else [])
           @ [
               sf
                 {|    var a: int = this.getEntry(key);
    var b2: int = this.getEntry(other);
    this.applyWrite(key, a + b2);
    mapRemove(this.entries, other);
  }|};
             ]
         else [])
      @ [
          sf {|}

method test_%s_%s_normal_mode() {
  var m: %s = new %s();
  m.%s("alpha");
  assert (m.mutations == 1, "%s applied");
}

method test_%s_toggle_and_reads() {
  var m: %s = new %s();
  m.%s("data");
  m.enter%s();
  // reads keep working in %s mode
  assert (m.getEntry("data") == %d, "read in %s mode");
  assert (m.entryCount() == 1, "count in %s mode");
  m.leave%s();
  m.%s("more");
  assert (m.entryCount() == 2, "writes resume after leaving");
}|}
            t op1 mgr_c mgr_c op1 op1 t mgr_c mgr_c op1 flag_cap flag v1
            flag flag flag_cap op1;
        ]
      @ (if knobs.k_aux_tests >= 1 then
           [
             sf {|method test_%s_missing_entry_rejected() {
  var m: %s = new %s();
  var rejected: bool = false;
  try { var v: int = m.getEntry("nope"); } catch (e) { rejected = true; }
  assert (rejected, "missing entry rejected");
}|}
               t mgr_c mgr_c;
           ]
         else [])
      @ (if knobs.k_aux_tests >= 2 then
           [
             sf {|method test_%s_repeated_writes_counted() {
  var m: %s = new %s();
  m.%s("a");
  m.%s("a");
  assert (m.mutations == 2, "every write counted");
}|}
               t mgr_c mgr_c op1 op1;
           ]
         else [])
      @ (if guard1 then
           [
             sf {|// regression test added with the %s fix
method test_%s_%s_%s_rejected() {
  var m: %s = new %s();
  m.%s = true;
  var rejected: bool = false;
  try { m.%s("x"); } catch (e) { rejected = true; }
  assert (rejected, "%s rejected in %s mode");
  assert (m.mutations == 0, "no mutation in %s mode");
}|}
               id1
               (String.lowercase_ascii
                  (String.concat "" (String.split_on_char '-' id1)))
               op1 flag mgr_c mgr_c flag op1 op1 flag flag;
           ]
         else [])
      @ (if path2 then
           [
             sf {|method test_%s_%s_normal_mode() {
  var m: %s = new %s();
  m.%s("a");
  m.%s("b");
  m.%s("a", "b");
  assert (m.mutations == 3, "%s applied");
}|}
               t op2 mgr_c mgr_c op1 op1 op2 op2;
           ]
         else [])
      @
      if guard2 then
        [
          sf {|// regression test added with the %s fix
method test_%s_%s_%s_rejected() {
  var m: %s = new %s();
  m.%s("a");
  m.%s("b");
  m.%s = true;
  var rejected: bool = false;
  try { m.%s("a", "b"); } catch (e) { rejected = true; }
  assert (rejected, "%s rejected in %s mode");
}|}
            id2
            (String.lowercase_ascii
               (String.concat "" (String.split_on_char '-' id2)))
            op2 flag mgr_c mgr_c op1 op1 flag op2 op2 flag;
        ]
      else [])
  in
  let semantic =
    sf "No %s mutation may be applied while the %s is %s." system
      (String.lowercase_ascii mgr) flag
  in
  ( source,
    Case.Guard,
    sf "%s-mode write protection" flag,
    ( id1,
      sf "%s mutations allowed while the %s is %s" (capitalize op1)
        (String.lowercase_ascii mgr) flag,
      sf
        "%s During recovery, %s requests mutated the %s before its state \
         was consistent, corrupting downstream readers. The fix rejects \
         mutations while %s."
        semantic op1 (String.lowercase_ascii mgr) flag ),
    ( id2,
      sf "%s bypasses %s checks" op2 flag,
      sf
        "%s The %s operation added for %s skipped the %s check every other \
         write performs. The fix adds the same check."
        semantic op2 reason flag ) )

(* ------------------------------------------------------------------ *)
(* Template: TTL / expiry check (hbase-snapshot-ttl sibling)           *)
(* ------------------------------------------------------------------ *)

let gen_ttl r ~system ~tag ~ids ~knobs =
  let item = Rng.pick r [| "Backup"; "Archive"; "Checkpoint"; "Bundle" |] in
  let op1 = Rng.pick r [| "restore"; "mount"; "materialize"; "unpack" |] in
  let op2 = Rng.pick r [| "export"; "replicate"; "mirror"; "copyOut" |] in
  let reason =
    Rng.pick r
      [| "backup tooling"; "cross-cluster sync"; "cold-storage offload";
         "audit tooling" |]
  in
  let ttl = Rng.range r 3 9 * 100 in
  let expiry = Rng.range r 10 19 * 100 in
  let payload = Rng.range r 11 99 in
  let item_c = sf "%s%s" item tag in
  let mgr_c = sf "%sManager%s" item tag in
  let t = String.lowercase_ascii tag in
  let low_item = String.lowercase_ascii item in
  let guard =
    sf {|    if (it.ttl > 0 && nowTs >= it.expiryTs) {
      throw "%sTTLExpiredException";
    }|} item
  in
  let id1, id2 = ids in
  let tid id =
    String.lowercase_ascii (String.concat "" (String.split_on_char '-' id))
  in
  let fixture =
    String.concat "\n"
      ([
         sf {|method make%s(): %s {
  var mg: %s = new %s();
  // live %s: expires at ts=%d
  mg.register(new %s("live", %d, %d, %d));
  // no-ttl %s: never expires
  mg.register(new %s("forever", 0, 0, %d));|}
           mgr_c mgr_c mgr_c mgr_c low_item expiry item_c ttl expiry payload
           low_item item_c (payload + 1);
       ]
      @ List.init knobs.k_fixture_extra (fun i ->
            sf {|  mg.register(new %s("spare%d", %d, %d, %d));|} item_c i ttl
              (expiry + ((i + 1) * 100))
              (payload + 2 + i))
      @ [ {|  return mg;
}|} ])
  in
  let source stage =
    let guard1 = stage >= 1 in
    let path2 = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         sf {|// %s: %s lifecycle and TTL
class %s {
  field name: str;
  field ttl: int;
  field expiryTs: int;
  field payload: int;
  method init(name: str, ttl: int, expiryTs: int, payload: int) {
    this.name = name;
    this.ttl = ttl;
    this.expiryTs = expiryTs;
    this.payload = payload;
  }
}

class %s {
  field items: map;
  field served: int = 0;
  field shipped: int = 0;
  method register(it: %s) {
    mapPut(this.items, it.name, it);
  }
  method itemCount(): int {
    return mapSize(this.items);
  }
  method isExpired(name: str, nowTs: int): bool {
    var it: %s = mapGet(this.items, name);
    if (it == null) {
      throw "%sDoesNotExistException";
    }
    if (it.ttl > 0 && nowTs >= it.expiryTs) {
      return true;
    }
    return false;
  }
  // common payload access: every serving path ends here
  method openPayload(it: %s): int {
    return it.payload;
  }|}
           system low_item item_c mgr_c item_c item_c item item_c;
       ]
      @ (if knobs.k_helper then
           [
             sf {|  method drop(name: str) {
    if (!mapContains(this.items, name)) {
      throw "%sDoesNotExistException";
    }
    mapRemove(this.items, name);
  }|}
               item;
           ]
         else [])
      @ [
          sf {|  method %s(name: str, nowTs: int): int {
    var it: %s = mapGet(this.items, name);
    if (it == null) {
      throw "%sDoesNotExistException";
    }|}
            op1 item_c item;
        ]
      @ (if guard1 then [ guard ] else [])
      @ [
          {|    this.served = this.served + 1;
    return this.openPayload(it);
  }|};
        ]
      @ (if path2 then
           [
             sf {|  // %s reads a %s as its source (added for %s)
  method %s(name: str, nowTs: int): int {
    var it: %s = mapGet(this.items, name);
    if (it == null) {
      throw "%sDoesNotExistException";
    }|}
               op2 low_item reason op2 item_c item;
           ]
           @ (if guard2 then [ guard ] else [])
           @ [
               {|    this.shipped = this.shipped + 1;
    return this.openPayload(it);
  }|};
             ]
         else [])
      @ [ "}"; "" ]
      @ [ fixture ]
      @ [
          sf {|
method test_%s_%s_live() {
  var mg: %s = make%s();
  var p: int = mg.%s("live", %d);
  assert (p == %d, "%s served the right payload");
  assert (mg.served == 1, "%s counted");
}

method test_%s_%s_no_ttl() {
  var mg: %s = make%s();
  var p: int = mg.%s("forever", 99999);
  assert (p == %d, "no-ttl %s always served");
}

method test_%s_%s_missing_rejected() {
  var mg: %s = make%s();
  var rejected: bool = false;
  try { var p: int = mg.%s("nope", 1); } catch (e) { rejected = true; }
  assert (rejected, "missing %s rejected");
}|}
            t op1 mgr_c mgr_c op1 (expiry / 2) payload op1 op1 t op1 mgr_c
            mgr_c op1 (payload + 1) low_item t op1 mgr_c mgr_c op1 low_item;
        ]
      @ (if knobs.k_aux_tests >= 1 then
           [
             sf {|method test_%s_lifecycle() {
  var mg: %s = make%s();
  assert (mg.itemCount() == %d, "fixture registered");
  assert (!mg.isExpired("live", %d), "not expired before ttl");
  assert (mg.isExpired("live", %d), "expired after ttl");
  assert (!mg.isExpired("forever", 99999), "ttl 0 never expires");
}|}
               t mgr_c mgr_c (2 + knobs.k_fixture_extra) (expiry / 2)
               (expiry * 2);
           ]
         else [])
      @ (if knobs.k_aux_tests >= 2 && knobs.k_helper then
           [
             sf {|method test_%s_drop() {
  var mg: %s = make%s();
  mg.drop("forever");
  assert (mg.itemCount() == %d, "%s dropped");
}|}
               t mgr_c mgr_c (1 + knobs.k_fixture_extra) low_item;
           ]
         else [])
      @ (if guard1 then
           [
             sf {|// regression test added with the %s fix
method test_%s_%s_expired_rejected() {
  var mg: %s = make%s();
  var rejected: bool = false;
  try { var p: int = mg.%s("live", %d); } catch (e) { rejected = true; }
  assert (rejected, "expired %s not served");
}|}
               id1 (tid id1) op1 mgr_c mgr_c op1 (expiry * 2) low_item;
           ]
         else [])
      @ (if path2 then
           [
             sf {|method test_%s_%s_live() {
  var mg: %s = make%s();
  var p: int = mg.%s("live", %d);
  assert (p == %d, "%s works");
}|}
               t op2 mgr_c mgr_c op2 (expiry / 2) payload op2;
           ]
         else [])
      @
      if guard2 then
        [
          sf {|// regression test added with the %s fix
method test_%s_%s_expired_rejected() {
  var mg: %s = make%s();
  var rejected: bool = false;
  try { var p: int = mg.%s("live", %d); } catch (e) { rejected = true; }
  assert (rejected, "expired %s not shipped");
}|}
            id2 (tid id2) op2 mgr_c mgr_c op2 (expiry * 2) low_item;
        ]
      else [])
  in
  let semantic =
    sf "No expired %s may be served once its TTL has elapsed." low_item
  in
  ( source,
    Case.Guard,
    sf "%s TTL enforcement" low_item,
    ( id1,
      sf "%s serves expired %ss" (capitalize op1) low_item,
      sf
        "%s The %s path returned payloads for %ss whose TTL had elapsed, \
         resurrecting data the retention policy had retired. The fix checks \
         the expiry timestamp before serving."
        semantic op1 low_item ),
    ( id2,
      sf "%s path skips the TTL check" (capitalize op2),
      sf
        "%s The %s path added for %s skipped the expiry check that %s \
         performs. The fix adds the same check."
        semantic op2 reason op1 ) )

(* ------------------------------------------------------------------ *)
(* Template: blocking I/O in lock scope (zk-serialize-lock sibling)    *)
(* ------------------------------------------------------------------ *)

let gen_lock r ~system ~tag ~ids ~knobs =
  let node = Rng.pick r [| "LogNode"; "TreeNode"; "StoreNode"; "PageNode" |] in
  let writer =
    Rng.pick r
      [| "FlushProcessor"; "SnapshotWriter"; "DumpProcessor"; "SpoolWorker" |]
  in
  let cache =
    Rng.pick r [| "StatsCache"; "QuotaCache"; "DigestCache"; "EpochCache" |]
  in
  let flush = Rng.pick r [| "flushNode"; "spoolNode"; "persistNode" |] in
  let d1 = Rng.range r 1 9 in
  let node_c = sf "%s%s" node tag in
  let writer_c = sf "%s%s" writer tag in
  let cache_c = sf "%s%s" cache tag in
  let t = String.lowercase_ascii tag in
  let id1, id2 = ids in
  let tid id =
    String.lowercase_ascii (String.concat "" (String.split_on_char '-' id))
  in
  let source stage =
    let sync_fixed = stage >= 1 in
    let cache_added = stage >= 2 in
    let cache_fixed = stage >= 3 in
    String.concat "\n"
      ([
         sf {|// %s: snapshot flushing and locks
class %s {
  field path: str;
  field data: int;
  field children: list;
  method init(path: str, data: int) {
    this.path = path;
    this.data = data;
  }
  method getChildren(): list {
    return this.children;
  }
}

class %s {
  field fcount: int = 0;
  field root: %s;
  method init(root: %s) {
    this.root = root;
  }
  method flushCount(): int {
    return this.fcount;
  }|}
           system node_c writer_c node_c node_c;
       ]
      @ (if knobs.k_helper then
           [
             sf {|  method childCount(node: %s): int {
    var kids: list = null;
    synchronized (node) {
      kids = node.getChildren();
    }
    return listSize(kids);
  }|}
               node_c;
           ]
         else [])
      @ (if sync_fixed then
           [
             sf {|  method %s(node: %s) {
    var snapshot: int = 0;
    var kids: list = null;
    synchronized (node) {
      this.fcount = this.fcount + 1;
      snapshot = node.data;
      kids = node.getChildren();
    }
    // blocking write moved outside the monitor (%s fix)
    writeRecord(snapshot);
    var i: int = 0;
    while (i < listSize(kids)) {
      writeRecord(listGet(kids, i));
      i = i + 1;
    }
  }|}
               flush node_c id1;
           ]
         else
           [
             sf {|  method %s(node: %s) {
    var kids: list = null;
    synchronized (node) {
      this.fcount = this.fcount + 1;
      // blocking write while holding the node monitor: writers stall
      writeRecord(node.data);
      kids = node.getChildren();
      var i: int = 0;
      while (i < listSize(kids)) {
        writeRecord(listGet(kids, i));
        i = i + 1;
      }
    }
  }|}
               flush node_c;
           ])
      @ [ "}"; "" ]
      @ (if cache_added then
           if cache_fixed then
             [
               sf {|class %s {
  field table: map;
  field dumped: int = 0;
  method dump() {
    var keys: list = null;
    var count: int = 0;
    synchronized (this) {
      keys = mapKeys(this.table);
      count = mapSize(this.table);
      this.dumped = this.dumped + 1;
    }
    // blocking writes moved outside the monitor (%s fix)
    writeRecord(count);
    var i: int = 0;
    while (i < listSize(keys)) {
      writeRecord(listGet(keys, i));
      i = i + 1;
    }
  }
}
|}
                 cache_c id2;
             ]
           else
             [
               sf {|class %s {
  field table: map;
  field dumped: int = 0;
  method dump() {
    synchronized (this) {
      writeRecord(mapSize(this.table));
      var keys: list = mapKeys(this.table);
      var i: int = 0;
      while (i < listSize(keys)) {
        writeRecord(listGet(keys, i));
        i = i + 1;
      }
      this.dumped = this.dumped + 1;
    }
  }
}
|}
                 cache_c;
             ]
         else [])
      @ [
          sf {|method make%sRoot(): %s {
  var root: %s = new %s("/", %d);
  listAdd(root.children, %d);
  listAdd(root.children, %d);%s
  return root;
}

method test_%s_flush_counts() {
  var root: %s = make%sRoot();
  var w: %s = new %s(root);
  w.%s(root);
  w.%s(root);
  assert (w.flushCount() == 2, "two flushes recorded");
}|}
            writer_c node_c node_c node_c d1 (d1 + 1) (d1 + 2)
            (String.concat ""
               (List.init knobs.k_fixture_extra (fun i ->
                    sf "\n  listAdd(root.children, %d);" (d1 + 3 + i))))
            t node_c writer_c writer_c writer_c flush flush;
        ]
      @ (if knobs.k_helper && knobs.k_aux_tests >= 1 then
           [
             sf {|method test_%s_child_count_under_lock_only() {
  // reading children holds the monitor briefly but performs no I/O
  var root: %s = make%sRoot();
  var w: %s = new %s(root);
  assert (w.childCount(root) == %d, "children counted");
}|}
               t node_c writer_c writer_c writer_c
               (2 + knobs.k_fixture_extra);
           ]
         else [])
      @ (if knobs.k_aux_tests >= 2 then
           [
             sf {|method test_%s_root_data_intact() {
  var root: %s = make%sRoot();
  assert (root.data == %d, "fixture data intact");
}|}
               t node_c writer_c d1;
           ]
         else [])
      @ (if sync_fixed then
           [
             sf {|// regression test added with the %s fix
method test_%s_%s_completes() {
  var root: %s = make%sRoot();
  var w: %s = new %s(root);
  w.%s(root);
  assert (w.fcount == 1, "flush completed");
}|}
               id1 (tid id1) flush node_c writer_c writer_c writer_c flush;
           ]
         else [])
      @ (if cache_added then
           [
             sf {|method test_%s_cache_dump() {
  var cache: %s = new %s();
  mapPut(cache.table, 1, 100);
  mapPut(cache.table, 2, 200);
  cache.dump();
  assert (cache.dumped == 1, "cache dumped");
}|}
               t cache_c cache_c;
           ]
         else [])
      @
      if cache_fixed then
        [
          sf {|// regression test added with the %s fix
method test_%s_cache_dump_completes() {
  var cache: %s = new %s();
  mapPut(cache.table, 5, 500);
  cache.dump();
  assert (cache.dumped == 1, "cache dump completed");
}|}
            id2 (tid id2) cache_c cache_c;
        ]
      else [])
  in
  let semantic =
    sf "No blocking I/O may be performed while holding a %s monitor."
      (String.lowercase_ascii node)
  in
  ( source,
    Case.Lock,
    "snapshot flushing under locks",
    ( id1,
      "Stalled stream can cause cluster to hang due to near-deadlock",
      sf
        "%s %s wrote records to a stalled stream inside a synchronized \
         block, so every writer blocked behind the monitor and the cluster \
         turned into a zombie: write operations were silently blocked. The \
         fix copies state under the lock and performs the blocking writes \
         outside."
        semantic flush ),
    ( id2,
      sf "Synchronized dump in %s blocks the cluster" cache,
      sf
        "%s One release after %s, %s.dump repeated the same pattern: \
         blocking writes inside a synchronized block. The fix snapshots the \
         map under the lock and writes outside."
        semantic id1 cache_c ) )

(* ------------------------------------------------------------------ *)
(* Template: observer staleness (hdfs-observer-locations sibling)      *)
(* ------------------------------------------------------------------ *)

let gen_observer r ~system ~tag ~ids ~knobs =
  let rec_n =
    Rng.pick r [| "LocatedChunk"; "IndexedPage"; "TrackedExtent"; "MappedSlab" |]
  in
  let obs =
    Rng.pick r
      [| "MirrorNode"; "FollowerNode"; "ReplicaServer"; "StandbyNode" |]
  in
  let op1 = Rng.pick r [| "getChunk"; "fetchChunk"; "readChunk" |] in
  let op2 = Rng.pick r [| "listChunks"; "scanChunks"; "batchRead" |] in
  let fresh = Rng.range r 2 6 in
  let rec_c = sf "%s%s" rec_n tag in
  let obs_c = sf "%s%s" obs tag in
  let t = String.lowercase_ascii tag in
  let id1, id2 = ids in
  let tid id =
    String.lowercase_ascii (String.concat "" (String.split_on_char '-' id))
  in
  let guard =
    sf {|    if (c.readyCount == 0) {
      // %s not caught up: retry on the primary
      throw "StaleReplicaRetryException";
    }|}
      (String.lowercase_ascii obs)
  in
  let source stage =
    let guard1 = stage >= 1 in
    let path2 = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         sf {|// %s: %s reads
class %s {
  field chunkId: int;
  field readyCount: int;
  method init(chunkId: int, readyCount: int) {
    this.chunkId = chunkId;
    this.readyCount = readyCount;
  }
}

class %s {
  field chunks: map;
  field servedReads: int = 0;
  field servedScans: int = 0;
  method reportChunk(c: %s) {
    mapPut(this.chunks, c.chunkId, c);
  }
  method reportedCount(): int {
    return mapSize(this.chunks);
  }
  method catchUp(chunkId: int, ready: int) {
    // a late report arrives: the %s learns the replicas
    var c: %s = mapGet(this.chunks, chunkId);
    if (c == null) {
      return;
    }
    c.readyCount = ready;
  }
  // common result assembly: every read path ends here
  method buildResult(c: %s): int {
    return c.chunkId;
  }|}
           system (String.lowercase_ascii obs) rec_c obs_c rec_c
           (String.lowercase_ascii obs) rec_c rec_c;
       ]
      @ (if knobs.k_helper then
           [
             sf {|  method readyChunks(): int {
    var ids: list = mapKeys(this.chunks);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(ids)) {
      var c: %s = mapGet(this.chunks, listGet(ids, i));
      if (c.readyCount > 0) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }|}
               rec_c;
           ]
         else [])
      @ [
          sf {|  method %s(chunkId: int): int {
    var c: %s = mapGet(this.chunks, chunkId);
    if (c == null) {
      throw "ChunkMissingException";
    }|}
            op1 rec_c;
        ]
      @ (if guard1 then [ guard ] else [])
      @ [
          {|    this.servedReads = this.servedReads + 1;
    return this.buildResult(c);
  }|};
        ]
      @ (if path2 then
           [
             sf {|  // %s added for directory-heavy workloads
  method %s(chunkId: int): int {
    var c: %s = mapGet(this.chunks, chunkId);
    if (c == null) {
      throw "ChunkMissingException";
    }|}
               op2 op2 rec_c;
           ]
           @ (if guard2 then [ guard ] else [])
           @ [
               {|    this.servedScans = this.servedScans + 1;
    return this.buildResult(c);
  }|};
             ]
         else [])
      @ [
          sf {|}

method make%s(): %s {
  var nn: %s = new %s();
  nn.reportChunk(new %s(1, %d));
  // chunk 2's report is delayed: zero replicas known to the %s
  nn.reportChunk(new %s(2, 0));%s
  return nn;
}

method test_%s_read_ready_chunk() {
  var nn: %s = make%s();
  var r: int = nn.%s(1);
  assert (r == 1, "ready chunk served");
  assert (nn.servedReads == 1, "read counted");
}

method test_%s_read_missing_rejected() {
  var nn: %s = make%s();
  var rejected: bool = false;
  try { var r: int = nn.%s(99); } catch (e) { rejected = true; }
  assert (rejected, "missing chunk rejected");
}|}
            obs_c obs_c obs_c obs_c rec_c fresh (String.lowercase_ascii obs)
            rec_c
            (String.concat ""
               (List.init knobs.k_fixture_extra (fun i ->
                    sf "\n  nn.reportChunk(new %s(%d, %d));" rec_c (3 + i)
                      (fresh + i))))
            t obs_c obs_c op1 t obs_c obs_c op1;
        ]
      @ (if knobs.k_aux_tests >= 1 then
           [
             sf {|method test_%s_late_report_catches_up() {
  var nn: %s = make%s();
  assert (nn.reportedCount() == %d, "chunks known");
  nn.catchUp(2, %d);
  var r: int = nn.%s(2);
  assert (r == 2, "chunk served after catch-up");
}|}
               t obs_c obs_c (2 + knobs.k_fixture_extra) fresh op1;
           ]
         else [])
      @ (if knobs.k_aux_tests >= 2 && knobs.k_helper then
           [
             sf {|method test_%s_ready_count() {
  var nn: %s = make%s();
  assert (nn.readyChunks() == %d, "ready chunks counted");
}|}
               t obs_c obs_c (1 + knobs.k_fixture_extra);
           ]
         else [])
      @ (if guard1 then
           [
             sf {|// regression test added with the %s fix
method test_%s_stale_read_redirected() {
  var nn: %s = make%s();
  var redirected: bool = false;
  try { var r: int = nn.%s(2); } catch (e) { redirected = true; }
  assert (redirected, "stale chunk retried on primary");
}|}
               id1 (tid id1) obs_c obs_c op1;
           ]
         else [])
      @ (if path2 then
           [
             sf {|method test_%s_%s_ready_chunk() {
  var nn: %s = make%s();
  var r: int = nn.%s(1);
  assert (r == 1, "%s served");
}|}
               t op2 obs_c obs_c op2 op2;
           ]
         else [])
      @
      if guard2 then
        [
          sf {|// regression test added with the %s fix
method test_%s_%s_stale_redirected() {
  var nn: %s = make%s();
  var redirected: bool = false;
  try { var r: int = nn.%s(2); } catch (e) { redirected = true; }
  assert (redirected, "stale %s redirected");
}|}
            id2 (tid id2) op2 obs_c obs_c op2 op2;
        ]
      else [])
  in
  let semantic =
    sf
      "No read served by the %s may return a chunk without any ready \
       replica."
      (String.lowercase_ascii obs)
  in
  ( source,
    Case.Guard,
    sf "%s chunk freshness" (String.lowercase_ascii obs),
    ( id1,
      sf "Handle stale chunks when reading from the %s"
        (String.lowercase_ascii obs),
      sf
        "%s When the %s's replica report lagged the primary, reads returned \
         replica-less chunks and clients failed. The fix detects zero ready \
         replicas and retries the read on the primary."
        semantic (String.lowercase_ascii obs) ),
    ( id2,
      sf "Avoid %s from the %s when the replica report is delayed" op2
        (String.lowercase_ascii obs),
      sf
        "%s The %s path added for directory-heavy workloads skipped the \
         freshness check that %s performs. The fix adds the same check."
        semantic op2 op1 ) )

(* ------------------------------------------------------------------ *)
(* Case assembly                                                       *)
(* ------------------------------------------------------------------ *)

let ticket_ids k = (sf "SYN-%d" (1000 + (2 * k)), sf "SYN-%d" (1001 + (2 * k)))

let case_with_knobs ~seed ~system ~sys_idx k knobs : Case.t =
  let family = List.nth families (k mod cases_per_system) in
  let r = Rng.make (case_seed seed k) in
  (* tag: unique per case within its system's concatenated source *)
  let tag = sf "K%d" sys_idx in
  let tag =
    match family with
    | State_guard -> tag ^ "g"
    | Ttl_expiry -> tag ^ "t"
    | Lock_io -> tag ^ "l"
    | Observer_stale -> tag ^ "o"
  in
  let tag = String.capitalize_ascii tag in
  let ids = ticket_ids k in
  let id1, id2 = ids in
  let source, kind, feature, (tid1, title1, disc1), (tid2, title2, disc2) =
    match family with
    | State_guard ->
        let src, kind, feature, t1, t2 =
          gen_state_guard r ~system ~tag ~ids ~knobs
        in
        (src, kind, feature, t1, t2)
    | Ttl_expiry ->
        let src, kind, feature, t1, t2 = gen_ttl r ~system ~tag ~ids ~knobs in
        (src, kind, feature, t1, t2)
    | Lock_io ->
        let src, kind, feature, t1, t2 = gen_lock r ~system ~tag ~ids ~knobs in
        (src, kind, feature, t1, t2)
    | Observer_stale ->
        let src, kind, feature, t1, t2 =
          gen_observer r ~system ~tag ~ids ~knobs
        in
        (src, kind, feature, t1, t2)
  in
  ignore (tid1, tid2);
  let first_year = Rng.range r 2012 2019 in
  let last_year = first_year + Rng.range r 1 5 in
  let violating = 1 + Rng.int r 2 in
  (* stages are pure functions of (seed, k, knobs): precompute them so
     repeated assembly (validation, version sweeps) is free *)
  let staged = Array.init 4 source in
  let source stage = staged.(max 0 (min stage 3)) in
  {
    Case.case_id = sf "%s-c%d-%s" system (k mod cases_per_system)
        (family_name family);
    system;
    feature;
    kind;
    bug_ids = [ id1; id2 ];
    n_stages = 4;
    source;
    ticket_meta = [ (1, id1, title1, disc1); (3, id2, title2, disc2) ];
    regression_stages = [ 2 ];
    latest_stage = 3;
    latest_has_unknown_bug = false;
    violating_old_semantics = violating;
    first_year;
    last_year;
  }

let system_name ~seed i =
  let r = Rng.make (case_seed seed (-(i + 1))) in
  sf "syn%03d-%s" i (Rng.pick r system_nouns)

let system ~seed i : Registry.provider =
  let name = system_name ~seed i in
  let cases =
    List.init cases_per_system (fun j ->
        let k = (i * cases_per_system) + j in
        case_with_knobs ~seed ~system:name ~sys_idx:i k (knobs_at ~seed k))
  in
  Registry.provider ~system:name cases

let case_at ~seed k : Case.t =
  let i = k / cases_per_system in
  let name = system_name ~seed i in
  case_with_knobs ~seed ~system:name ~sys_idx:i k (knobs_at ~seed k)

let systems_per_scale = 4

let registry ?(seed = 42) ~scale () : Registry.t =
  Telemetry.Trace.with_span ~cat:"corpus"
    ~args:[ ("seed", string_of_int seed); ("scale", string_of_int scale) ]
    "corpus.synth"
    (fun () ->
      let n_systems = systems_per_scale * scale in
      let providers = List.init n_systems (fun i -> system ~seed i) in
      let n_cases = n_systems * cases_per_system in
      Telemetry.Metrics.incr ~by:n_cases "corpus.synth.cases";
      Telemetry.Trace.counter ~cat:"corpus" "corpus.synth.cases"
        [ ("cases", float_of_int n_cases) ];
      Registry.make
        ~name:(sf "synth:seed=%d:scale=%d" seed scale)
        providers)

(* ------------------------------------------------------------------ *)
(* Fuzzing: check + minimize                                           *)
(* ------------------------------------------------------------------ *)

let validate_failure (c : Case.t) : string option =
  match Case.validate c with
  | Ok () -> None
  | Error e -> Some e
  | exception e -> Some (sf "crash: %s" (Printexc.to_string e))

let shrinks k =
  (if k.k_aux_tests > 0 then [ { k with k_aux_tests = k.k_aux_tests - 1 } ]
   else [])
  @ (if k.k_fixture_extra > 0 then
       [ { k with k_fixture_extra = k.k_fixture_extra - 1 } ]
     else [])
  @ if k.k_helper then [ { k with k_helper = false } ] else []

type repro = {
  rp_seed : int;
  rp_case : int;
  rp_knobs : knobs;  (** smallest knob setting that still fails *)
  rp_failure : string;
}

let minimize ?fails ~seed k : repro option =
  let fails = Option.value fails ~default:validate_failure in
  let i = k / cases_per_system in
  let name = system_name ~seed i in
  let check knobs = fails (case_with_knobs ~seed ~system:name ~sys_idx:i k knobs) in
  match check (knobs_at ~seed k) with
  | None -> None
  | Some msg0 ->
      (* greedy knob descent: keep the first shrink that still fails *)
      let rec go knobs msg =
        match
          List.find_map
            (fun k' ->
              match check k' with Some m -> Some (k', m) | None -> None)
            (shrinks knobs)
        with
        | Some (k', m) -> go k' m
        | None -> { rp_seed = seed; rp_case = k; rp_knobs = knobs; rp_failure = msg }
      in
      Some (go (knobs_at ~seed k) msg0)

let repro_command r =
  sf "lisa corpus synth --seed %d --case %d" r.rp_seed r.rp_case
