(** Mini-HBase: four regression families.  The snapshot-TTL case is the
    paper's §4 Bug #1 (HBASE-27671 → HBASE-28704 → HBASE-29296): after two
    rounds of fixes, the "latest release" (stage 4) still contains a path
    that returns expired snapshots without any check — the
    previously-unknown, community-confirmed bug LISA reports. *)

(* ================================================================== *)
(* Case 6: snapshot TTL expiration — 3 bugs, E6                         *)
(* ================================================================== *)

module Snapshot_ttl = struct
  (* stage 0: restore has no TTL check (HBASE-27671)
     stage 1: restore guarded + test
     stage 2: export path added, unguarded (HBASE-28704)
     stage 3: export guarded + test
     stage 4: copy-table path added, unguarded (HBASE-29296 — "latest")
     stage 5: copy-table guarded (the fix LISA proposed) *)
  let ttl_guard =
    {|    if (snap.ttl > 0 && nowTs >= snap.expiryTs) {
      throw "SnapshotTTLExpiredException";
    }|}

  let source stage =
    let restore_guard = stage >= 1 in
    let export_path = stage >= 2 in
    let export_guard = stage >= 3 in
    let copy_path = stage >= 4 in
    let copy_guard = stage >= 5 in
    String.concat "\n"
      ([
         {|// HBase: snapshot lifecycle and TTL
class Snapshot {
  field name: str;
  field ttl: int;
  field expiryTs: int;
  field table: str;
  method init(name: str, ttl: int, expiryTs: int, table: str) {
    this.name = name;
    this.ttl = ttl;
    this.expiryTs = expiryTs;
    this.table = table;
  }
}

class SnapshotManager {
  field snapshots: map;
  field restored: int = 0;
  field exported: int = 0;
  field copied: int = 0;
  method register(snap: Snapshot) {
    mapPut(this.snapshots, snap.name, snap);
  }
  method snapshotCount(): int {
    return mapSize(this.snapshots);
  }
  method deleteSnapshot(name: str) {
    if (!mapContains(this.snapshots, name)) {
      throw "SnapshotDoesNotExistException";
    }
    mapRemove(this.snapshots, name);
  }
  method isExpired(name: str, nowTs: int): bool {
    var snap: Snapshot = mapGet(this.snapshots, name);
    if (snap == null) {
      throw "SnapshotDoesNotExistException";
    }
    if (snap.ttl > 0 && nowTs >= snap.expiryTs) {
      return true;
    }
    return false;
  }
  // common manifest access: every snapshot-serving path ends here
  method openManifest(snap: Snapshot): str {
    return snap.table;
  }
  method restoreSnapshot(name: str, nowTs: int): str {
    var snap: Snapshot = mapGet(this.snapshots, name);
    if (snap == null) {
      throw "SnapshotDoesNotExistException";
    }
|};
       ]
      @ (if restore_guard then [ ttl_guard ] else [])
      @ [
          {|    this.restored = this.restored + 1;
    return this.openManifest(snap);
  }
|};
        ]
      @ (if export_path then
           [
             {|  method exportSnapshot(name: str, nowTs: int): str {
    var snap: Snapshot = mapGet(this.snapshots, name);
    if (snap == null) {
      throw "SnapshotDoesNotExistException";
    }
|};
           ]
           @ (if export_guard then [ ttl_guard ] else [])
           @ [ {|    this.exported = this.exported + 1;
    return this.openManifest(snap);
  }
|} ]
         else [])
      @ (if copy_path then
           [
             {|  // copy-table reads a snapshot as its source (added for backup tooling)
  method copyTableFromSnapshot(name: str, nowTs: int): str {
    var snap: Snapshot = mapGet(this.snapshots, name);
    if (snap == null) {
      throw "SnapshotDoesNotExistException";
    }
|};
           ]
           @ (if copy_guard then [ ttl_guard ] else [])
           @ [ {|    this.copied = this.copied + 1;
    return this.openManifest(snap);
  }
|} ]
         else [])
      @ [
          {|}

method makeSnapshotManager(): SnapshotManager {
  var sm: SnapshotManager = new SnapshotManager();
  // live snapshot: expires at ts=1000
  sm.register(new Snapshot("snap-live", 600, 1000, "orders"));
  // no-ttl snapshot: never expires
  sm.register(new Snapshot("snap-forever", 0, 0, "users"));
  return sm;
}

method test_hb_restore_live_snapshot() {
  var sm: SnapshotManager = makeSnapshotManager();
  var table: str = sm.restoreSnapshot("snap-live", 500);
  assert (table == "orders", "restored the right table");
  assert (sm.restored == 1, "restore counted");
}

method test_hb_restore_no_ttl_snapshot() {
  var sm: SnapshotManager = makeSnapshotManager();
  var table: str = sm.restoreSnapshot("snap-forever", 99999);
  assert (table == "users", "no-ttl snapshot always restorable");
}

method test_hb_restore_missing_rejected() {
  var sm: SnapshotManager = makeSnapshotManager();
  var rejected: bool = false;
  try { var t: str = sm.restoreSnapshot("nope", 1); } catch (e) { rejected = true; }
  assert (rejected, "missing snapshot rejected");
}

method test_hb_snapshot_lifecycle() {
  var sm: SnapshotManager = makeSnapshotManager();
  assert (sm.snapshotCount() == 2, "two snapshots registered");
  assert (!sm.isExpired("snap-live", 500), "not expired before ttl");
  assert (sm.isExpired("snap-live", 2000), "expired after ttl");
  assert (!sm.isExpired("snap-forever", 99999), "ttl 0 never expires");
  sm.deleteSnapshot("snap-live");
  assert (sm.snapshotCount() == 1, "snapshot deleted");
}
|};
        ]
      @ (if restore_guard then
           [
             {|// regression test added with the HBASE-27671 fix
method test_hbase27671_restore_expired_rejected() {
  var sm: SnapshotManager = makeSnapshotManager();
  var rejected: bool = false;
  try { var t: str = sm.restoreSnapshot("snap-live", 2000); } catch (e) { rejected = true; }
  assert (rejected, "expired snapshot not restorable");
}
|};
           ]
         else [])
      @ (if export_path then
           [
             {|method test_hb_export_live_snapshot() {
  var sm: SnapshotManager = makeSnapshotManager();
  var table: str = sm.exportSnapshot("snap-live", 500);
  assert (table == "orders", "export works");
}
|};
           ]
         else [])
      @ (if export_guard then
           [
             {|// regression test added with the HBASE-28704 fix
method test_hbase28704_export_expired_rejected() {
  var sm: SnapshotManager = makeSnapshotManager();
  var rejected: bool = false;
  try { var t: str = sm.exportSnapshot("snap-live", 2000); } catch (e) { rejected = true; }
  assert (rejected, "expired snapshot not exportable");
}
|};
           ]
         else [])
      @ (if copy_path then
           [
             {|method test_hb_copy_table_live_snapshot() {
  var sm: SnapshotManager = makeSnapshotManager();
  var table: str = sm.copyTableFromSnapshot("snap-live", 500);
  assert (table == "orders", "copy-table works");
}
|};
           ]
         else [])
      @
      if copy_guard then
        [
          {|// regression test added with the HBASE-29296 fix
method test_hbase29296_copy_expired_rejected() {
  var sm: SnapshotManager = makeSnapshotManager();
  var rejected: bool = false;
  try { var t: str = sm.copyTableFromSnapshot("snap-live", 2000); } catch (e) { rejected = true; }
  assert (rejected, "expired snapshot not copyable");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hbase-snapshot-ttl";
      system = "hbase";
      feature = "snapshot TTL expiration";
      kind = Case.Guard;
      bug_ids = [ "HBASE-27671"; "HBASE-28704"; "HBASE-29296" ];
      n_stages = 6;
      source;
      ticket_meta =
        [
          ( 1,
            "HBASE-27671",
            "Client should not be able to restore/clone a snapshot after its ttl has expired",
            "No snapshot operation may serve a snapshot whose TTL has expired. \
             Restoring an expired snapshot silently resurrected stale data without \
             generating any alarm. The fix rejects restore when the snapshot has a \
             TTL and the current timestamp passed its expiry." );
          ( 3,
            "HBASE-28704",
            "The expired snapshot can be read by copytable or exportsnapshot",
            "No snapshot operation may serve a snapshot whose TTL has expired. The \
             export path added for backup tooling skipped the TTL expiration check \
             that restore performs, so users exported stale data. The fix adds the \
             same timestamp check to export." );
          ( 5,
            "HBASE-29296",
            "Missing critical snapshot expiration checks",
            "No snapshot operation may serve a snapshot whose TTL has expired. In \
             the latest release the copy-table-from-snapshot path still returns \
             expired snapshots to clients successfully without generating any \
             alarm. We propose to add timestamp checks to the remaining paths; the \
             solution has been accepted by HBase developers." );
        ];
      regression_stages = [ 2; 4 ];
      latest_stage = 4;
      latest_has_unknown_bug = true;
      violating_old_semantics = 3;
      first_year = 2023;
      last_year = 2025;
    }
end

(* ================================================================== *)
(* Case 7: region split during compaction (synthetic cluster)          *)
(* ================================================================== *)

module Region_split = struct
  let source stage =
    let guard1 = stage >= 1 in
    let merge_path = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// HBase: region lifecycle
class Region {
  field name: str;
  field compacting: bool = false;
  field online: bool = true;
  method init(name: str) {
    this.name = name;
  }
  method isCompacting(): bool {
    return this.compacting;
  }
}

class AssignmentManager {
  field regions: map;
  field splits: int = 0;
  field merges: int = 0;
  method addRegion(r: Region) {
    mapPut(this.regions, r.name, r);
  }
  // common region state transition: split and merge both end here
  method transition(r: Region) {
    r.online = false;
  }
  method onlineCount(): int {
    var names: list = mapKeys(this.regions);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(names)) {
      var r: Region = mapGet(this.regions, listGet(names, i));
      if (r.online) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method startCompaction(name: str) {
    var r: Region = mapGet(this.regions, name);
    if (r == null) {
      throw "UnknownRegionException";
    }
    r.compacting = true;
  }
  method finishCompaction(name: str) {
    var r: Region = mapGet(this.regions, name);
    if (r == null) {
      throw "UnknownRegionException";
    }
    r.compacting = false;
  }
  method splitRegion(name: str) {
    var r: Region = mapGet(this.regions, name);
    if (r == null) {
      throw "UnknownRegionException";
    }
|};
       ]
      @ (if guard1 then
           [
             {|    if (r.isCompacting()) {
      throw "RegionBusyException";
    }|};
           ]
         else [])
      @ [
          {|    this.splits = this.splits + 1;
    this.transition(r);
  }
|};
        ]
      @ (if merge_path then
           [
             (if guard2 then
                {|  method mergeRegions(name: str, other: str) {
    var r: Region = mapGet(this.regions, name);
    if (r == null) {
      throw "UnknownRegionException";
    }
    if (r.isCompacting()) {
      throw "RegionBusyException";
    }
    this.merges = this.merges + 1;
    this.transition(r);
  }|}
              else
                {|  method mergeRegions(name: str, other: str) {
    var r: Region = mapGet(this.regions, name);
    if (r == null) {
      throw "UnknownRegionException";
    }
    this.merges = this.merges + 1;
    this.transition(r);
  }|});
           ]
         else [])
      @ [
          {|}

method makeAssignment(): AssignmentManager {
  var am: AssignmentManager = new AssignmentManager();
  am.addRegion(new Region("r1"));
  am.addRegion(new Region("r2"));
  return am;
}

method test_hb_split_idle_region() {
  var am: AssignmentManager = makeAssignment();
  am.splitRegion("r1");
  assert (am.splits == 1, "split performed");
}

method test_hb_compaction_lifecycle() {
  var am: AssignmentManager = makeAssignment();
  assert (am.onlineCount() == 2, "both regions online");
  am.startCompaction("r1");
  am.finishCompaction("r1");
  am.splitRegion("r1");
  assert (am.onlineCount() == 1, "split takes the region offline");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the HBASE-21504 fix
method test_hbase21504_split_during_compaction_rejected() {
  var am: AssignmentManager = makeAssignment();
  var r: Region = mapGet(am.regions, "r1");
  r.compacting = true;
  var rejected: bool = false;
  try { am.splitRegion("r1"); } catch (e) { rejected = true; }
  assert (rejected, "split during compaction rejected");
}
|};
           ]
         else [])
      @ (if merge_path then
           [
             {|method test_hb_merge_idle_regions() {
  var am: AssignmentManager = makeAssignment();
  am.mergeRegions("r1", "r2");
  assert (am.merges == 1, "merge performed");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the HBASE-24528 fix
method test_hbase24528_merge_during_compaction_rejected() {
  var am: AssignmentManager = makeAssignment();
  var r: Region = mapGet(am.regions, "r1");
  r.compacting = true;
  var rejected: bool = false;
  try { am.mergeRegions("r1", "r2"); } catch (e) { rejected = true; }
  assert (rejected, "merge during compaction rejected");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hbase-region-split";
      system = "hbase";
      feature = "region split/merge vs compaction";
      kind = Case.Guard;
      bug_ids = [ "HBASE-21504"; "HBASE-24528" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "HBASE-21504",
            "Region split while a compaction is running corrupts store files",
            "No region may be split or merged while a compaction is in progress on \
             it. Splitting mid-compaction left half-rewritten store files referenced \
             by both daughters and corrupted the region. The fix rejects split \
             requests on compacting regions." );
          ( 3,
            "HBASE-24528",
            "Region merge does not respect ongoing compactions",
            "No region may be split or merged while a compaction is in progress on \
             it. The merge path added with the new assignment manager skipped the \
             compaction check the split path performs. The fix adds the same check." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2018;
      last_year = 2020;
    }
end

(* ================================================================== *)
(* Case 8: stale meta-cache entries (synthetic cluster)                *)
(* ================================================================== *)

module Meta_cache = struct
  let source stage =
    let guard1 = stage >= 1 in
    let batch_path = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// HBase: client meta cache
class CacheEntry {
  field region: str;
  field server: str;
  field stale: bool = false;
  method init(region: str, server: str) {
    this.region = region;
    this.server = server;
  }
  method isStale(): bool {
    return this.stale;
  }
}

class MetaCache {
  field entries: map;
  field lookups: int = 0;
  field refreshes: int = 0;
  method put(e: CacheEntry) {
    mapPut(this.entries, e.region, e);
  }
  method refresh(region: str): str {
    this.refreshes = this.refreshes + 1;
    var e: CacheEntry = mapGet(this.entries, region);
    if (e == null) {
      throw "TableNotFoundException";
    }
    e.stale = false;
    return e.server;
  }
  // common serving path: every locator ends here
  method serve(e: CacheEntry): str {
    this.lookups = this.lookups + 1;
    return e.server;
  }
  method invalidate(region: str) {
    var e: CacheEntry = mapGet(this.entries, region);
    if (e == null) {
      return;
    }
    e.stale = true;
  }
  method staleCount(): int {
    var regions: list = mapKeys(this.entries);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(regions)) {
      var e: CacheEntry = mapGet(this.entries, listGet(regions, i));
      if (e.isStale()) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method locate(region: str): str {
    var e: CacheEntry = mapGet(this.entries, region);
    if (e == null) {
      throw "TableNotFoundException";
    }
|};
       ]
      @ (if guard1 then
           [
             {|    if (e.isStale()) {
      return this.refresh(region);
    }|};
           ]
         else [])
      @ [
          {|    return this.serve(e);
  }
|};
        ]
      @ (if batch_path then
           [
             (if guard2 then
                {|  method locateBatch(region: str): str {
    var e: CacheEntry = mapGet(this.entries, region);
    if (e == null) {
      throw "TableNotFoundException";
    }
    if (e.isStale()) {
      return this.refresh(region);
    }
    return this.serve(e);
  }|}
              else
                {|  method locateBatch(region: str): str {
    var e: CacheEntry = mapGet(this.entries, region);
    if (e == null) {
      throw "TableNotFoundException";
    }
    return this.serve(e);
  }|});
           ]
         else [])
      @ [
          {|}

method makeMetaCache(): MetaCache {
  var mc: MetaCache = new MetaCache();
  mc.put(new CacheEntry("r1", "server-a"));
  mc.put(new CacheEntry("r2", "server-b"));
  return mc;
}

method test_hb_locate_fresh_entry() {
  var mc: MetaCache = makeMetaCache();
  var s: str = mc.locate("r1");
  assert (s == "server-a", "fresh entry served");
  assert (mc.refreshes == 0, "no refresh needed");
}

method test_hb_invalidate_marks_stale() {
  var mc: MetaCache = makeMetaCache();
  mc.invalidate("r1");
  mc.invalidate("not-a-region");
  assert (mc.staleCount() == 1, "one stale entry");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the HBASE-22380 fix
method test_hbase22380_stale_entry_refreshed() {
  var mc: MetaCache = makeMetaCache();
  var e: CacheEntry = mapGet(mc.entries, "r1");
  e.stale = true;
  var s: str = mc.locate("r1");
  assert (mc.refreshes == 1, "stale entry refreshed");
  assert (s == "server-a", "refreshed location returned");
}
|};
           ]
         else [])
      @ (if batch_path then
           [
             {|method test_hb_locate_batch_fresh() {
  var mc: MetaCache = makeMetaCache();
  var s: str = mc.locateBatch("r2");
  assert (s == "server-b", "batch lookup works");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the HBASE-26024 fix
method test_hbase26024_batch_stale_refreshed() {
  var mc: MetaCache = makeMetaCache();
  var e: CacheEntry = mapGet(mc.entries, "r2");
  e.stale = true;
  var s: str = mc.locateBatch("r2");
  assert (mc.refreshes == 1, "stale batch entry refreshed");
  assert (s == "server-b", "refreshed location returned");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hbase-meta-cache";
      system = "hbase";
      feature = "client meta cache staleness";
      kind = Case.Guard;
      bug_ids = [ "HBASE-22380"; "HBASE-26024" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "HBASE-22380",
            "Clients keep using stale region locations after region moves",
            "No lookup may serve a cache entry that is marked stale. After a region \
             moved, clients kept sending requests to the old server until manual \
             cache clears, causing request storms of NotServingRegionException. The \
             fix refreshes stale entries before serving them." );
          ( 3,
            "HBASE-26024",
            "Batch locator serves stale meta cache entries",
            "No lookup may serve a cache entry that is marked stale. The batch \
             locator added for multi-get skipped the staleness check that the \
             single locator performs. The fix adds the same refresh-on-stale." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2019;
      last_year = 2021;
    }
end

(* ================================================================== *)
(* Case 9: WAL writes under the roll lock (synthetic cluster)          *)
(* ================================================================== *)

module Wal_lock = struct
  let source stage =
    let roll_fixed = stage >= 1 in
    let archive = stage >= 2 in
    let archive_fixed = stage >= 3 in
    String.concat "\n"
      ([
         {|// HBase: write-ahead-log rolling
class WalManager {
  field rolls: int = 0;
  field archives: int = 0;
  field current: int = 1;
  method currentSegment(): int {
    var seg: int = 0;
    synchronized (this) {
      seg = this.current;
    }
    return seg;
  }
  method stats(): str {
    return "rolls=" + this.rolls + " archives=" + this.archives;
  }
|};
       ]
      @ (if roll_fixed then
           [
             {|  method rollWriter() {
    var previous: int = 0;
    synchronized (this) {
      previous = this.current;
      this.current = this.current + 1;
      this.rolls = this.rolls + 1;
    }
    // flush the previous segment outside the roll lock (HBASE-20559 fix)
    fsync(previous);
  }|};
           ]
         else
           [
             {|  method rollWriter() {
    synchronized (this) {
      // fsync while holding the roll lock stalls all appenders
      fsync(this.current);
      this.current = this.current + 1;
      this.rolls = this.rolls + 1;
    }
  }|};
           ])
      @ (if archive then
           [
             (if archive_fixed then
                {|  method archiveWal(segment: int) {
    var seg: int = 0;
    synchronized (this) {
      seg = segment;
      this.archives = this.archives + 1;
    }
    // copy to archive storage outside the lock (HBASE-27112 fix)
    writeRecord(seg);
  }|}
              else
                {|  method archiveWal(segment: int) {
    synchronized (this) {
      writeRecord(segment);
      this.archives = this.archives + 1;
    }
  }|});
           ]
         else [])
      @ [
          {|}

method test_hb_roll_advances_segment() {
  var wm: WalManager = new WalManager();
  wm.rollWriter();
  wm.rollWriter();
  assert (wm.currentSegment() == 3, "segment advanced twice");
  assert (wm.rolls == 2, "rolls counted");
}

method test_hb_wal_stats() {
  var wm: WalManager = new WalManager();
  wm.rollWriter();
  assert (wm.stats() == "rolls=1 archives=0", "stats rendered");
}
|};
        ]
      @ (if roll_fixed then
           [
             {|// regression test added with the HBASE-20559 fix
method test_hbase20559_roll_completes() {
  var wm: WalManager = new WalManager();
  wm.rollWriter();
  assert (wm.rolls == 1, "roll completed");
}
|};
           ]
         else [])
      @ (if archive then
           [
             {|method test_hb_archive_wal() {
  var wm: WalManager = new WalManager();
  wm.archiveWal(1);
  assert (wm.archives == 1, "archive performed");
}
|};
           ]
         else [])
      @
      if archive_fixed then
        [
          {|// regression test added with the HBASE-27112 fix
method test_hbase27112_archive_completes() {
  var wm: WalManager = new WalManager();
  wm.archiveWal(2);
  assert (wm.archives == 1, "archive completed");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hbase-wal-lock";
      system = "hbase";
      feature = "WAL rolling under locks";
      kind = Case.Lock;
      bug_ids = [ "HBASE-20559"; "HBASE-27112" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "HBASE-20559",
            "Region server appenders stall during WAL roll",
            "No blocking I/O may be performed while holding the WAL roll lock. \
             rollWriter fsynced the previous segment inside the roll monitor, so \
             every appender stalled for seconds on slow disks and client writes \
             timed out. The fix moves the fsync outside the lock." );
          ( 3,
            "HBASE-27112",
            "WAL archiving blocks appenders",
            "No blocking I/O may be performed while holding the WAL roll lock. The \
             archiving path added for backup copies segments to archive storage \
             inside the same monitor, recreating the stall. The fix snapshots state \
             under the lock and copies outside." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2018;
      last_year = 2022;
    }
end

let cases : Case.t list =
  [ Snapshot_ttl.case; Region_split.case; Meta_cache.case; Wal_lock.case ]
