lib/lisa/study.mli:
