lib/corpus/hbase.mli: Case
