lib/semantics/rule.ml: Fmt Minilang Smt
