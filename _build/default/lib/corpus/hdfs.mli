(** Mini-hdfs regression families: feature modules with staged version
    histories (see {!Case}). *)

val cases : Case.t list
