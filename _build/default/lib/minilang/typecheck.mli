(** Static sanity checker for MiniJava programs.

    Verifies name resolution, arities, field existence (when the
    receiver's class is statically known), scalar type agreement (with
    [any] as a wildcard), scoping, and loop-only [break]/[continue].
    Errors are collected, not raised. *)

type error = { msg : string; loc : Loc.t }

(** Check a whole program; an empty list means clean. *)
val check_program : Ast.program -> error list

val pp_error : Format.formatter -> error -> unit

val errors_to_string : error list -> string
