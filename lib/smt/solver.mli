(** Satisfiability, validity, and the paper's trace checks.

    A small DPLL(T): boolean backtracking over canonical atoms with
    three-valued early evaluation, pruned by the theory solver on every
    partial assignment.  Complete for the checker-formula fragment. *)

type verdict =
  | Sat of (Formula.atom * bool) list
  | Unsat
  | Unknown of string
      (** undecided: node budget exhausted, injected fault, or open
          circuit breaker; the payload records why *)

val verdict_is_sat : verdict -> bool

(** Number of [solve] invocations since the last {!reset_solve_count}.
    Shared (atomically) across domains; the enforcement engine uses the
    delta to report solver calls saved by caching. *)
val solve_count : unit -> int

val reset_solve_count : unit -> unit

(** DPLL search-node budget used when [solve] is not given one
    explicitly.  Defaults to 200k nodes — far above the checker-formula
    fragment, so [Unknown] only appears under adversarial formulas or
    injected faults. *)
val default_node_budget : unit -> int

val set_default_node_budget : int -> unit

(** {2 Theory-consistency memo knobs (diagnostics/tests)} *)

val theory_memo_size : unit -> int

(** Capacity at which the memo sheds half its entries (epoch halving;
    clamped to >= 2). *)
val set_theory_memo_max : int -> unit

(** Decide satisfiability.  A [Sat] model assigns a sign to each canonical
    atom of the (simplified) formula.  The search visits at most
    [node_budget] nodes and answers [Unknown] past it; injected faults
    and an open solver breaker also answer [Unknown] (or raise
    {!Resilience.Fault.Injected} for crash/transient kinds). *)
val solve : ?node_budget:int -> Formula.t -> verdict

val is_sat : Formula.t -> bool

(** [Unknown] is conservatively not unsat. *)
val is_unsat : Formula.t -> bool

val is_valid : Formula.t -> bool

(** [entails pc c]: every state satisfying [pc] satisfies [c]. *)
val entails : Formula.t -> Formula.t -> bool

val equivalent : Formula.t -> Formula.t -> bool

(** {1 Trace checks (paper §3.2)} *)

type trace_check =
  | Verified  (** the path condition implies the checker formula *)
  | Violation of (Formula.atom * bool) list
      (** a state admitted by the path that violates the semantics *)
  | Undecided of string
      (** the solver could not decide; the reason degrades the rule's
          report instead of killing the run *)

(** The complement check: a trace with path condition [pc] violates the
    semantic with checker formula [checker] iff [pc /\ !checker] is
    satisfiable.  Under-constrained variables ("missing checks") leave
    room for the complement, which is exactly how the paper catches the
    missing [s.ttl > 0] example. *)
val check_trace : pc:Formula.t -> checker:Formula.t -> trace_check

(** The naive direct check (ablation E8): flags a trace only when its path
    condition outright contradicts the checker formula; traces that merely
    miss a check slip through. *)
val check_trace_direct : pc:Formula.t -> checker:Formula.t -> trace_check

(** Render a model as a human-readable conjunction. *)
val model_to_string : (Formula.atom * bool) list -> string
