examples/hdfs_observer.mli:
