(** Failure-ticket bundles.

    A ticket is the unit of input to the inference pipeline, matching the
    three inputs of the paper's prompt (Listing 1): failure description
    and developer discussion, the code patch (diff), and the source code
    after the patch has been applied.  We additionally keep the buggy
    source itself (the diff is computed, not stored) and the names of the
    regression tests the developers added with the fix. *)

type t = {
  ticket_id : string;  (** e.g. ["ZK-1208"] *)
  system : string;  (** subject system, e.g. ["zookeeper"] *)
  title : string;
  description : string;  (** failure report text *)
  discussion : string;  (** developer discussion summary *)
  buggy_source : string;  (** full MiniJava source before the fix *)
  patched_source : string;  (** full MiniJava source after the fix *)
  regression_tests : string list;  (** tests added with the fix *)
}

let make ~ticket_id ~system ~title ~description ~discussion ~buggy_source
    ~patched_source ~regression_tests =
  {
    ticket_id;
    system;
    title;
    description;
    discussion;
    buggy_source;
    patched_source;
    regression_tests;
  }

(** The unified diff of the fix, computed from the stored sources. *)
let diff (t : t) : string =
  Diffing.Line_diff.to_unified
    ~old_label:(t.ticket_id ^ "/before")
    ~new_label:(t.ticket_id ^ "/after")
    (Diffing.Line_diff.diff t.buggy_source t.patched_source)

let buggy_program (t : t) : Minilang.Ast.program =
  Minilang.Parser.program ~file:(t.ticket_id ^ "-buggy.mj") t.buggy_source

let patched_program (t : t) : Minilang.Ast.program =
  Minilang.Parser.program ~file:(t.ticket_id ^ "-patched.mj") t.patched_source

let summary (t : t) : string =
  Fmt.str "[%s] %s (%s)" t.ticket_id t.title t.system
