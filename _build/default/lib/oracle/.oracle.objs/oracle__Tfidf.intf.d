lib/oracle/tfidf.mli: Hashtbl
