(** CI/CD enforcement: the "executable contract" vision of the paper.

    Replays a case's version history through a gated pipeline: every
    proposed version must pass its test suite *and* the accumulated
    rulebook.  When a fix lands, its ticket is fed through the learning
    pipeline and the accepted rules extend the rulebook — so the next
    commit that re-violates the semantics is blocked before release,
    instead of after the next production incident.

    Enforcement goes through the {!Engine} scheduler: one engine per
    replay, so stage N+1 reuses stage N's clean reports for every rule
    whose region the commit left untouched, and the SMT verdict cache
    spans the whole history. *)

type event =
  | Shipped of { stage : int; tests : int }
  | Blocked of { stage : int; findings : Checker.rule_report list }
  | Learned of { stage : int; ticket_id : string; accepted : int; rejected : int }
  | Test_failure of { stage : int; failures : string list }
  | Degraded of { stage : int; rules : string list }
      (** enforcement lost evidence for these rules (budgets, breakers,
          quarantine): the stage's verdict is best-effort, not final *)
  | Demoted of { stage : int; rules : string list }
      (** witness-replay triage ranked every finding of these rules
          Likely-FP: they are advisory and did not block the stage *)

type run = {
  case_id : string;
  events : event list;
  book : Semantics.Rulebook.t;
  stats : Engine.Stats.t;  (** the replay engine's counters *)
}

let run_tests (p : Minilang.Ast.program) : string list =
  List.filter_map
    (fun name ->
      match Minilang.Interp.run_test p name with
      | Minilang.Interp.Passed -> None
      | Minilang.Interp.Failed m | Minilang.Interp.Errored m -> Some (name ^ ": " ^ m))
    (Minilang.Interp.test_names p)

(** Replay one case's history through the gate.

    [jobs] is the engine's worker-pool width (1 = serial, deterministic
    bit-for-bit).  Rules exist only after the first incident is learned,
    so the rulebook gate arms itself as the history unfolds.

    [triage] (default [None] — the gate behaves byte-identically to the
    pre-triage pipeline) runs witness-replay triage over each stage's
    findings: only rules with a finding that survives triage block the
    stage; all-Likely-FP rules are demoted to an advisory
    {!Demoted} event. *)
let replay ?(config = Pipeline.default_config) ?(jobs = 1)
    ?(triage : Triage.config option) (c : Corpus.Case.t) : run =
  let engine =
    Engine.Scheduler.create
      ~config:
        {
          Engine.Scheduler.default_config with
          Engine.Scheduler.jobs;
          checker = config.Pipeline.checker;
        }
      ()
  in
  let book = Semantics.Rulebook.create ~system:c.Corpus.Case.system in
  let events = ref [] in
  let push e = events := e :: !events in
  for stage = 0 to c.Corpus.Case.n_stages - 1 do
    let p = Corpus.Case.program_at c stage in
    (* 1. the classic gate: the test suite *)
    let failures = run_tests p in
    if failures <> [] then push (Test_failure { stage; failures })
    else begin
      (* 2. the LISA gate: the accumulated rulebook, via the engine *)
      let reports = Pipeline.enforce_with engine p book in
      let findings = Pipeline.findings reports in
      (match Engine.Scheduler.degraded_ids reports with
      | [] -> ()
      | rules -> push (Degraded { stage; rules }));
      let blocking_findings =
        match triage with
        | None -> findings
        | Some tcfg ->
            let ts = Triage.triage_reports ~config:tcfg p findings in
            (match Triage.demoted_ids ts with
            | [] -> ()
            | rules -> push (Demoted { stage; rules }));
            List.filter_map
              (fun t ->
                if Triage.blocking t then Some t.Triage.t_report else None)
              ts
      in
      if blocking_findings <> [] then
        push (Blocked { stage; findings = blocking_findings })
      else
        push (Shipped { stage; tests = List.length (Minilang.Interp.test_names p) })
    end;
    (* 3. if a fix landed at this stage, learn from its ticket *)
    match Corpus.Case.ticket_at c stage with
    | None -> ()
    | Some ticket ->
        let outcome = Pipeline.learn ~config ticket in
        Semantics.Rulebook.add_all book outcome.Pipeline.accepted;
        push
          (Learned
             {
               stage;
               ticket_id = ticket.Oracle.Ticket.ticket_id;
               accepted = List.length outcome.Pipeline.accepted;
               rejected = List.length outcome.Pipeline.rejected;
             })
  done;
  {
    case_id = c.Corpus.Case.case_id;
    events = List.rev !events;
    book;
    stats = Engine.Scheduler.stats engine;
  }

(** Gate every case of a registry, in registry order (one engine per
    replay, as in production CI where each repo gets its own gate). *)
let replay_all ?config ?jobs ?triage ?(registry = Corpus.Registry.builtin) () :
    run list =
  List.map (replay ?config ?jobs ?triage) registry.Corpus.Registry.cases

let blocked_stages (r : run) : int list =
  List.filter_map (function Blocked { stage; _ } -> Some stage | _ -> None) r.events

(** Stages whose enforcement was degraded (lost evidence). *)
let degraded_stages (r : run) : int list =
  List.filter_map (function Degraded { stage; _ } -> Some stage | _ -> None) r.events

let event_to_string = function
  | Shipped { stage; tests } -> Fmt.str "v%d SHIPPED (%d tests green)" stage tests
  | Blocked { stage; findings } ->
      Fmt.str "v%d BLOCKED by rulebook: %s" stage
        (String.concat "; "
           (List.map
              (fun (r : Checker.rule_report) ->
                r.Checker.rep_rule.Semantics.Rule.rule_id)
              findings))
  | Learned { stage; ticket_id; accepted; rejected } ->
      Fmt.str "v%d learned %s: %d rule(s) accepted, %d rejected" stage ticket_id
        accepted rejected
  | Test_failure { stage; failures } ->
      Fmt.str "v%d test failures: %s" stage (String.concat "; " failures)
  | Degraded { stage; rules } ->
      Fmt.str "v%d DEGRADED enforcement (evidence lost): %s" stage
        (String.concat "; " rules)
  | Demoted { stage; rules } ->
      Fmt.str "v%d demoted to advisory (triage: all findings Likely-FP): %s"
        stage (String.concat "; " rules)

let run_to_string (r : run) : string =
  Fmt.str "=== CI history for %s ===\n%s\n[%s]" r.case_id
    (String.concat "\n" (List.map event_to_string r.events))
    (Engine.Stats.to_string r.stats)
