(* trace_check FILE [REQUIRED_NAME ...]

   Validates a Chrome-trace JSON file produced by `--trace`: the file
   must be well-formed JSON (checked with Telemetry.Json_check, the
   same validator the unit tests use), contain at least one complete
   ("ph":"X") span, and mention every required event name given on the
   command line.  A required name written as `counter:NAME` must not
   only be present but appear on a counter ("ph":"C") event — the trace
   export writes one event per line, so the check is per-line (used for
   the engine's smt.* solver-core counters).  Exit 0 on success, 1 with
   a message otherwise.  Used by `make trace`, the `make check` trace
   smoke (the engine's pipeline spans and smt.* solver-core counters,
   including the pre-solver fast-path ladder `smt.fastpath.interval` /
   `smt.fastpath.bcp` / `smt.fastpath.subsumed` / `smt.fastpath.saved`
   and the cache-pressure series `smt.memo.local_evict`),
   the serve-daemon smoke, which requires the `serve.request` span and
   the `counter:serve.queue` depth/shed series, and the witness-replay
   triage smoke (`make triage`), which requires the `triage.witness`
   replay span and the `counter:triage.tier.*` tier series. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  match Array.to_list Sys.argv with
  | _ :: path :: required ->
      let body =
        try read_file path
        with Sys_error e ->
          Printf.eprintf "trace_check: cannot read %s: %s\n" path e;
          exit 1
      in
      (match Telemetry.Json_check.validate body with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "trace_check: %s is not valid JSON: %s\n" path e;
          exit 1);
      if not (contains body "\"ph\":\"X\"") then begin
        Printf.eprintf "trace_check: %s has no complete (\"ph\":\"X\") spans\n"
          path;
        exit 1
      end;
      let lines = String.split_on_char '\n' body in
      let missing =
        List.filter
          (fun name ->
            match String.index_opt name ':' with
            | Some i when String.sub name 0 i = "counter" ->
                (* counter:NAME — the name must sit on a "ph":"C" event *)
                let n = String.sub name (i + 1) (String.length name - i - 1) in
                let needle = Printf.sprintf "\"name\":%S" n in
                not
                  (List.exists
                     (fun line ->
                       contains line needle && contains line "\"ph\":\"C\"")
                     lines)
            | _ -> not (contains body (Printf.sprintf "\"name\":%S" name)))
          required
      in
      if missing <> [] then begin
        Printf.eprintf "trace_check: %s is missing event name(s): %s\n" path
          (String.concat ", " missing);
        exit 1
      end;
      Printf.printf "trace_check: %s OK (%d required name(s) present)\n" path
        (List.length required)
  | _ ->
      prerr_endline "usage: trace_check FILE [REQUIRED_NAME ...]";
      exit 1
