(** Satisfiability, validity, and the paper's trace checks.

    A small DPLL(T): boolean backtracking over canonical atoms with
    three-valued early evaluation, pruned by the theory solver on every
    partial assignment.  Complete for the checker-formula fragment.

    The search core runs on a compiled form of the formula — an
    id-indexed assignment array over the canonical atoms, two-watched-
    literal unit propagation over a clausal view of the NNF, and a
    process-global store of conflict literal-sets learned from
    {!Theory.consistent} failures.  All accelerations are
    result-preserving: verdicts and models are byte-identical to the
    plain backtracking search.  An assumption {!context} adds
    [push]/[pop] of literal assertions and {!solve_under_assumptions}
    for incremental solving over shared path-condition prefixes (see
    {!Pctrie} and [lib/smt/README.md]). *)

type verdict =
  | Sat of (Formula.atom * bool) list
  | Unsat
  | Unknown of string
      (** undecided: node budget exhausted, injected fault, or open
          circuit breaker; the payload records why *)

val verdict_is_sat : verdict -> bool

(** Number of [solve] invocations since the last {!reset_solve_count}.
    Shared (atomically) across domains; the enforcement engine uses the
    delta to report solver calls saved by caching. *)
val solve_count : unit -> int

val reset_solve_count : unit -> unit

(** DPLL search-node budget used when [solve] is not given one
    explicitly.  Defaults to 200k nodes — far above the checker-formula
    fragment, so [Unknown] only appears under adversarial formulas or
    injected faults. *)
val default_node_budget : unit -> int

val set_default_node_budget : int -> unit

(** {2 Theory-consistency memo knobs (diagnostics/tests)} *)

val theory_memo_size : unit -> int

(** Capacity at which the memo sheds half its entries (epoch halving;
    clamped to >= 2). *)
val set_theory_memo_max : int -> unit

(** Clear the theory-consistency memo (benchmarks use this to measure
    genuinely cold, from-scratch solving). *)
val reset_theory_memo : unit -> unit

(** {2 Conflict learning}

    Theory conflicts ([Theory.consistent] returning false on a definite
    literal set) are minimized with {!Theory.conflict_core} and recorded
    globally; any later partial assignment containing a learned set is
    refuted without a theory call.  Learning is result-preserving —
    it changes the cost of a verdict, never the verdict or the model —
    and [Unknown]/degraded results are never learned.

    Publication is batched: each domain buffers fresh conflicts locally
    ([Domain.DLS]) and takes the store lock once per batch — at the end
    of a solve, at a context pop, at a buffer-size threshold, or via
    {!flush_learned}.  A domain's own unpublished clauses still prune
    its search (the store probe falls through to the pending buffer),
    so batching is result-preserving too; under a serial schedule the
    visible clause set matches immediate publication step for step. *)

(** Number of conflict sets learned since the last {!reset_learned}. *)
val learned_count : unit -> int

val reset_learned : unit -> unit

(** Publish the calling domain's pending learned clauses now (one lock
    hold for the whole batch).  The engine's pool calls this as each
    worker domain retires so no clause is stranded in a dead domain's
    buffer. *)
val flush_learned : unit -> unit

(** Learned clauses published through batch flushes since process start
    (monotone; surfaced as the [smt.learned.batched] telemetry
    counter). *)
val learned_batch_count : unit -> int

(** Toggle conflict learning (tests pin that verdicts are identical with
    learning disabled).  Enabled by default. *)
val set_learning_enabled : bool -> unit

val learning_enabled : unit -> bool

(** {2 Incremental-core counters}

    Cumulative, process-wide, atomically shared across domains; the
    engine reads deltas into its stats and telemetry counter events. *)

val assume_push_count : unit -> int

val assume_pop_count : unit -> int

(** Literals implied by two-watched-literal unit propagation. *)
val propagation_count : unit -> int

(** {2 Pre-solver fast path}

    A ladder of sound Unsat filters run before the DPLL(T) search:
    {!Absdom.refute} (interval/constant/null abstract evaluation), a
    root-BCP-only check over the clausal NNF view, and — in the
    checker's trie walk — subsumption of whole subtrees under a prefix
    already proved inconsistent.  Every rung is result-preserving (an
    Unsat short-circuit carries no payload), so the toggle changes
    query cost, never a verdict, and is deliberately absent from every
    cache key.  Enabled by default; the bench flips it off to measure
    the saved full solves. *)

val set_fastpath_enabled : bool -> unit

val fastpath_enabled : unit -> bool

(** Queries retired by the abstract domain (rung 1). *)
val fastpath_interval_count : unit -> int

(** Queries retired by root BCP alone (rung 2). *)
val fastpath_bcp_count : unit -> int

(** Leaf queries answered by trie-subtree subsumption (rung 3; bumped by
    the engine checker via {!note_trie_subsumed}). *)
val fastpath_subsumed_count : unit -> int

(** Total full DPLL(T) searches avoided (sum of the rungs). *)
val fastpath_saved_count : unit -> int

(** Full DPLL(T) searches actually run.  The bench's reduction metric is
    this counter's delta with the fast path on vs off. *)
val full_solve_count : unit -> int

(** Record one trie-subtree subsumption (called by [Engine.Checker]). *)
val note_trie_subsumed : unit -> unit

(** Does root BCP alone refute the formula?  Test hook for the qcheck
    soundness suite; the solve path folds this into its fast path. *)
val bcp_refutes : Formula.t -> bool

(** Decide satisfiability.  A [Sat] model assigns a sign to each canonical
    atom of the (simplified) formula.  The search visits at most
    [node_budget] nodes and answers [Unknown] past it; injected faults
    and an open solver breaker also answer [Unknown] (or raise
    {!Resilience.Fault.Injected} for crash/transient kinds). *)
val solve : ?node_budget:int -> Formula.t -> verdict

(** {1 Assumption contexts (incremental solving)}

    A persistent stack of asserted formulas for solving many queries
    that share a common prefix — the engine's path-condition trie walk
    pushes each shared pc fact exactly once.  [push] decomposes the
    formula's literal conjuncts and checks theory consistency of the
    whole prefix a single time, seeding the global theory memo and the
    learned-conflict store; queries under the prefix then hit those
    caches instead of re-deriving its consequences.  The caches are
    result-preserving, so verdicts and models are byte-identical to
    one-shot solving of the full conjunction. *)

type context

val create_context : unit -> context

(** Assert a formula's literal conjuncts on top of the stack. *)
val push : context -> Formula.t -> unit

(** Retract the most recent {!push}.
    @raise Invalid_argument on an empty stack. *)
val pop : context -> unit

val assumption_depth : context -> int

(** The pushed formulas, outermost first. *)
val assumptions : context -> Formula.t list

(** False once the asserted prefix is known inconsistent (boolean or
    theory); any formula entailing the prefix is then unsat without a
    search. *)
val assumptions_consistent : context -> bool

(** [solve_under_assumptions ctx f] decides [assumptions ctx /\ f]:
    builds the conjunction and defers to {!solve_in_context}.  Agrees
    with [solve (conj (assumptions ctx @ [f]))] — same verdict, same
    model — for every split of a conjunction into prefix and suffix. *)
val solve_under_assumptions : ?node_budget:int -> context -> Formula.t -> verdict

(** [solve_in_context ctx f] is {!solve} of [f] reusing the context's
    incremental state.  Sound only when [f] entails the context's
    assumptions (the caller passes the full conjunction; the context
    contributes warm caches and the inconsistent-prefix shortcut). *)
val solve_in_context : ?node_budget:int -> context -> Formula.t -> verdict

val is_sat : Formula.t -> bool

(** [Unknown] is conservatively not unsat. *)
val is_unsat : Formula.t -> bool

val is_valid : Formula.t -> bool

(** [entails pc c]: every state satisfying [pc] satisfies [c]. *)
val entails : Formula.t -> Formula.t -> bool

val equivalent : Formula.t -> Formula.t -> bool

(** {1 Trace checks (paper §3.2)} *)

type trace_check =
  | Verified  (** the path condition implies the checker formula *)
  | Violation of (Formula.atom * bool) list
      (** a state admitted by the path that violates the semantics *)
  | Undecided of string
      (** the solver could not decide; the reason degrades the rule's
          report instead of killing the run *)

(** The complement check: a trace with path condition [pc] violates the
    semantic with checker formula [checker] iff [pc /\ !checker] is
    satisfiable.  Under-constrained variables ("missing checks") leave
    room for the complement, which is exactly how the paper catches the
    missing [s.ttl > 0] example. *)
val check_trace : pc:Formula.t -> checker:Formula.t -> trace_check

(** The naive direct check (ablation E8): flags a trace only when its path
    condition outright contradicts the checker formula; traces that merely
    miss a check slip through. *)
val check_trace_direct : pc:Formula.t -> checker:Formula.t -> trace_check

(** Render a model as a human-readable conjunction. *)
val model_to_string : (Formula.atom * bool) list -> string
