(** Experiment E8 — mechanism ablations over all guard cases.

    Three knobs from §3.2, each compared against the paper's default:

    - {b branch pruning}: record only branches whose guards involve
      relevant variables vs. record everything;
    - {b test selection}: RAG similarity search vs. the full suite vs. a
      seeded pseudo-random subset;
    - {b check method}: the complement-formula check vs. the naive direct
      check (which treats missing conditions as satisfied). *)

type variant = {
  v_name : string;
  v_config : Checker.config;
}

let variants : variant list =
  [
    { v_name = "default (prune+RAG+complement)"; v_config = Checker.default_config };
    { v_name = "no pruning"; v_config = { Checker.default_config with Checker.prune = false } };
    {
      v_name = "all tests (no RAG)";
      v_config = { Checker.default_config with Checker.selection = Checker.All_tests };
    };
    {
      v_name = "random tests (k=2)";
      v_config =
        {
          Checker.default_config with
          Checker.selection = Checker.Pseudo_random { seed = 42; k = 2 };
        };
    };
    {
      v_name = "direct check (no complement)";
      v_config = { Checker.default_config with Checker.method_ = Checker.Direct };
    };
  ]

type row = {
  r_variant : string;
  r_regressions_caught : int;  (** of the guard cases *)
  r_total_guard_cases : int;
  r_tests_run : int;
  r_branches_recorded : int;
  r_branches_total : int;
  r_uncovered_paths : int;
}

let guard_cases ?(registry = Corpus.Registry.builtin) () =
  List.filter
    (fun (c : Corpus.Case.t) -> c.Corpus.Case.kind = Corpus.Case.Guard)
    registry.Corpus.Registry.cases

let run_variant ?registry (v : variant) : row =
  let cases = guard_cases ?registry () in
  let caught = ref 0 in
  let tests = ref 0 in
  let recorded = ref 0 in
  let total = ref 0 in
  let uncovered = ref 0 in
  List.iter
    (fun (c : Corpus.Case.t) ->
      let ticket = Corpus.Case.original_ticket c in
      let pconfig = { Pipeline.default_config with Pipeline.checker = v.v_config } in
      let outcome = Pipeline.learn ~config:pconfig ticket in
      let book =
        Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system outcome.Pipeline.accepted
      in
      let reports = Pipeline.enforce ~config:pconfig (Corpus.Case.program_at c 2) book in
      if Pipeline.findings reports <> [] then incr caught;
      List.iter
        (fun (r : Checker.rule_report) ->
          tests := !tests + List.length r.Checker.rep_tests_run;
          recorded := !recorded + r.Checker.rep_branches_recorded;
          total := !total + r.Checker.rep_branches_total;
          uncovered := !uncovered + List.length r.Checker.rep_uncovered_paths)
        reports)
    cases;
  {
    r_variant = v.v_name;
    r_regressions_caught = !caught;
    r_total_guard_cases = List.length cases;
    r_tests_run = !tests;
    r_branches_recorded = !recorded;
    r_branches_total = !total;
    r_uncovered_paths = !uncovered;
  }

let run ?registry () : row list = List.map (run_variant ?registry) variants

let print (rows : row list) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pf "E8 — mechanism ablations (guard cases, regression stage)";
  pf "---------------------------------------------------------";
  pf "%-32s %8s %7s %10s %10s %10s" "variant" "caught" "tests" "recorded" "branches"
    "uncovered";
  List.iter
    (fun r ->
      pf "%-32s %5d/%-2d %7d %10d %10d %10d" r.r_variant r.r_regressions_caught
        r.r_total_guard_cases r.r_tests_run r.r_branches_recorded r.r_branches_total
        r.r_uncovered_paths)
    rows;
  pf "";
  pf "expected shape: pruning cuts recorded branches without losing catches;";
  pf "random test selection loses catches through missed paths (more uncovered);";
  pf "the direct check misses every missing-check regression.";
  Buffer.contents buf
