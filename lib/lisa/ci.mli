(** CI/CD enforcement: gated replay of a case's version history (the
    paper's executable-contract vision), engine-backed — one
    {!Engine.Scheduler} per replay, so later stages reuse earlier
    stages' clean reports for rules whose region a commit left
    untouched. *)

type event =
  | Shipped of { stage : int; tests : int }
  | Blocked of { stage : int; findings : Checker.rule_report list }
  | Learned of { stage : int; ticket_id : string; accepted : int; rejected : int }
  | Test_failure of { stage : int; failures : string list }
  | Degraded of { stage : int; rules : string list }
      (** enforcement lost evidence for these rules (budgets, breakers,
          quarantine): the stage's verdict is best-effort, not final *)
  | Demoted of { stage : int; rules : string list }
      (** witness-replay triage ranked every finding of these rules
          Likely-FP: they are advisory and did not block the stage *)

type run = {
  case_id : string;
  events : event list;
  book : Semantics.Rulebook.t;
  stats : Engine.Stats.t;  (** the replay engine's counters *)
}

(** Failing tests of a version, rendered. *)
val run_tests : Minilang.Ast.program -> string list

(** Replay a case's history through the gate.  [jobs] (default 1) is the
    engine worker-pool width; 1 is bit-for-bit deterministic.  [triage]
    (default off — byte-identical to the pre-triage gate) enables
    witness-replay triage: only findings that survive it block a stage;
    all-Likely-FP rules surface as advisory {!Demoted} events. *)
val replay :
  ?config:Pipeline.config -> ?jobs:int -> ?triage:Triage.config ->
  Corpus.Case.t -> run

(** Gate every case of [registry] (default the builtin corpus), in
    registry order. *)
val replay_all :
  ?config:Pipeline.config -> ?jobs:int -> ?triage:Triage.config ->
  ?registry:Corpus.Registry.t -> unit -> run list

(** Stages blocked by the rulebook gate. *)
val blocked_stages : run -> int list

(** Stages whose enforcement was degraded (lost evidence). *)
val degraded_stages : run -> int list

val event_to_string : event -> string

val run_to_string : run -> string
