lib/minilang/builtins.mli:
