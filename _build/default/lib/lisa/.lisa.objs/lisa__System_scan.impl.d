lib/lisa/system_scan.ml: Buffer Checker Corpus Fmt List Pipeline Semantics String
