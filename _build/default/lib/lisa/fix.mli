(** Automatic fix proposal for state-guard violations (the last mile of
    §4: the paper proposed the fixes for both unknown bugs and had them
    accepted).  A proposal de-normalizes the rule condition into the
    violating method's vocabulary, inserts the synthesized guard before
    the target statement, and is verified: the rule must hold on the
    patched program and its test suite must stay green. *)

type proposal = {
  fp_rule : string;  (** rule id *)
  fp_method : string;  (** qualified method that was patched *)
  fp_guard : string;  (** the inserted guard, printed *)
  fp_patched_source : string;
  fp_diff : string;  (** unified diff original -> patched *)
}

type verification = {
  fv_rule_clean : bool;  (** no violations remain, sanity still holds *)
  fv_tests_green : bool;
  fv_detail : string;
}

(** Synthesize a guard patch for one violating method of a state-guard
    rule; [None] when the condition cannot be expressed in the method's
    vocabulary or the rule is a lock rule. *)
val propose :
  Minilang.Ast.program -> Semantics.Rule.t -> method_:string -> proposal option

(** Re-enforce the rule on the patched program and run its test suite. *)
val verify : proposal -> Semantics.Rule.t -> verification

type case_fixes = {
  cf_case : string;
  cf_proposals : (proposal * verification) list;
}

(** Scan a §4 case's latest release, propose a fix for every violating
    method, verify each (deduplicated by patch content). *)
val fix_unknown_bug : string -> case_fixes

val print_case_fixes : case_fixes -> string
