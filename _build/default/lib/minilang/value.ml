(** Runtime values and the heap for MiniJava execution.

    Scalars are immutable; objects, maps and lists live in a heap indexed by
    integer addresses.  The same representation is shared by the concrete
    interpreter ({!Interp}) and the concolic engine ([lib/symexec]), which
    shadows every concrete value with a symbolic expression. *)

type t =
  | V_int of int
  | V_bool of bool
  | V_str of string
  | V_null
  | V_ref of int  (** heap address of an object, map or list *)

type cell =
  | C_obj of obj
  | C_map of (t * t) list ref  (** association list, insertion order kept *)
  | C_list of t list ref

and obj = { o_class : string; o_fields : (string, t) Hashtbl.t }

type heap = { mutable next : int; cells : (int, cell) Hashtbl.t }

let heap_create () = { next = 1; cells = Hashtbl.create 64 }

let heap_alloc h cell =
  let addr = h.next in
  h.next <- addr + 1;
  Hashtbl.replace h.cells addr cell;
  addr

let heap_get h addr = Hashtbl.find_opt h.cells addr

let heap_size h = Hashtbl.length h.cells

(* ------------------------------------------------------------------ *)
(* Value operations                                                    *)
(* ------------------------------------------------------------------ *)

let equal (a : t) (b : t) =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_bool x, V_bool y -> x = y
  | V_str x, V_str y -> String.equal x y
  | V_null, V_null -> true
  | V_ref x, V_ref y -> x = y
  | (V_int _ | V_bool _ | V_str _ | V_null | V_ref _), _ -> false

let is_truthy = function
  | V_bool b -> b
  | V_null -> false
  | V_int n -> n <> 0
  | V_str s -> s <> ""
  | V_ref _ -> true

let type_name = function
  | V_int _ -> "int"
  | V_bool _ -> "bool"
  | V_str _ -> "str"
  | V_null -> "null"
  | V_ref _ -> "ref"

let rec to_string ?heap (v : t) : string =
  match v with
  | V_int n -> string_of_int n
  | V_bool true -> "true"
  | V_bool false -> "false"
  | V_str s -> s
  | V_null -> "null"
  | V_ref addr -> (
      match heap with
      | None -> Fmt.str "<ref %d>" addr
      | Some h -> (
          match heap_get h addr with
          | None -> Fmt.str "<dangling %d>" addr
          | Some (C_obj o) -> Fmt.str "<%s@%d>" o.o_class addr
          | Some (C_map entries) ->
              let items =
                List.map
                  (fun (k, v) ->
                    Fmt.str "%s: %s" (to_string ?heap k) (to_string ?heap v))
                  !entries
              in
              "{" ^ String.concat ", " items ^ "}"
          | Some (C_list elems) ->
              "[" ^ String.concat ", " (List.map (to_string ?heap) !elems) ^ "]"))

let pp ppf v = Fmt.string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Object helpers                                                      *)
(* ------------------------------------------------------------------ *)

let new_obj ~cls : obj = { o_class = cls; o_fields = Hashtbl.create 8 }

let obj_get (o : obj) field = Hashtbl.find_opt o.o_fields field

let obj_set (o : obj) field v = Hashtbl.replace o.o_fields field v

let map_get entries k =
  let rec go = function
    | [] -> None
    | (k', v) :: rest -> if equal k k' then Some v else go rest
  in
  go !entries

let map_put entries k v =
  let rec go = function
    | [] -> [ (k, v) ]
    | (k', v') :: rest -> if equal k k' then (k, v) :: rest else (k', v') :: go rest
  in
  entries := go !entries

let map_remove entries k = entries := List.filter (fun (k', _) -> not (equal k k')) !entries

let map_contains entries k = map_get entries k <> None
