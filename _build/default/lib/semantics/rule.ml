(** Low-level semantic rules.

    A low-level semantic (paper §3.1) is a safety contract
    [<P> s <Q>] where [s] is a target statement identified from a past bug
    fix and [P] a conjunction of implementation-local predicates over
    program state.  The paper's running example:

    {v <session.isClosing == false> createEphemeralNode <> v}

    We support two rule families, which cover the paper's corpus:

    - {!State_guard}: a checker formula must hold whenever control reaches
      the target statement (asserted by concolic execution + SMT);
    - {!Lock_discipline}: a statement class (blocking I/O) must not execute
      while holding a monitor — the generalized form of the Figure 6 rules,
      asserted statically and dynamically.

    Rules carry their natural-language description and the high-level
    semantics they protect, exactly like the two-phase output of the LLM
    prompt (Listing 1). *)

(** How the target statement [s] of a contract is located in a program. *)
type target_spec =
  | Call_to of { callee : string; in_method : string option }
      (** any statement that calls [callee]; optionally restricted to one
          enclosing method (qualified name) — [None] generalizes the rule
          across the code base *)
  | Stmt_text of string  (** canonical printed head text must match exactly *)

(** Scope of a lock-discipline rule (Figure 6's generalization ladder). *)
type lock_scope =
  | Lock_specific of string
      (** only the named method's synchronized blocks (the rule as first
          learned: brittle) *)
  | Lock_blocking
      (** no *blocking* operation under any lock — the paper's recommended
          generalization *)
  | Lock_all_calls
      (** no call of any kind under a lock — the naive broadening that
          produces false positives *)

type body =
  | State_guard of {
      target : target_spec;
      condition : Smt.Formula.t;
          (** checker formula over canonical state paths, e.g.
              [Session != null && Session.closing == false] *)
    }
  | Lock_discipline of { scope : lock_scope }

type t = {
  rule_id : string;  (** stable identifier, e.g. ["ZK-1208.r1"] *)
  description : string;  (** the low-level semantics in natural language *)
  high_level : string;  (** the system-level property it protects *)
  origin : string;  (** failure ticket the rule was learned from *)
  body : body;
}

let make ~rule_id ~description ~high_level ~origin body =
  { rule_id; description; high_level; origin; body }

let is_state_guard r = match r.body with State_guard _ -> true | Lock_discipline _ -> false

let is_lock_rule r = match r.body with Lock_discipline _ -> true | State_guard _ -> false

let condition r =
  match r.body with State_guard { condition; _ } -> Some condition | Lock_discipline _ -> None

let target r =
  match r.body with State_guard { target; _ } -> Some target | Lock_discipline _ -> None

let target_spec_to_string = function
  | Call_to { callee; in_method = None } -> Fmt.str "calls %s (any method)" callee
  | Call_to { callee; in_method = Some m } -> Fmt.str "calls %s in %s" callee m
  | Stmt_text t -> Fmt.str "statement %S" t

let lock_scope_to_string = function
  | Lock_specific m -> Fmt.str "blocking I/O under lock in %s" m
  | Lock_blocking -> "no blocking I/O under any lock"
  | Lock_all_calls -> "no calls of any kind under any lock (naive)"

let to_string (r : t) =
  match r.body with
  | State_guard { target; condition } ->
      Fmt.str "[%s] <%s> %s <>" r.rule_id
        (Smt.Formula.to_string condition)
        (target_spec_to_string target)
  | Lock_discipline { scope } -> Fmt.str "[%s] %s" r.rule_id (lock_scope_to_string scope)

let pp ppf r = Fmt.string ppf (to_string r)

(** Generalize a rule: drop the method restriction of a [Call_to] target,
    widen a specific lock rule to all blocking operations.  This is the
    abstraction step of Figure 6 ("abstract rules to reflect system-level
    behaviours").

    Picking the abstraction level is the paper's central challenge (§2.2):
    a target anchored at a *builtin* (e.g. [mapPut]) is too syntactic to
    generalize — dropping the method scope would constrain every map
    insertion in the system and drown developers in false positives — so
    only rules anchored at project-defined callees are widened. *)
let generalize (r : t) : t =
  match r.body with
  | State_guard { target = Call_to { callee; in_method = Some _ }; condition }
    when not (Minilang.Builtins.is_builtin callee) ->
      let target = Call_to { callee; in_method = None } in
      {
        r with
        rule_id = r.rule_id ^ ".gen";
        description =
          Fmt.str "no execution may reach [%s] unless %s"
            (target_spec_to_string target)
            (Smt.Formula.to_string condition);
        body = State_guard { target; condition };
      }
  | State_guard _ -> r
  | Lock_discipline { scope = Lock_specific _ } ->
      { r with rule_id = r.rule_id ^ ".gen"; body = Lock_discipline { scope = Lock_blocking } }
  | Lock_discipline _ -> r

(** The naive broadening of a lock rule (for the E5 false-positive
    experiment). *)
let broaden_naively (r : t) : t =
  match r.body with
  | Lock_discipline _ ->
      { r with rule_id = r.rule_id ^ ".naive"; body = Lock_discipline { scope = Lock_all_calls } }
  | State_guard _ -> r
