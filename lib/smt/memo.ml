(** Global SMT verdict cache.

    The enforcement engine re-decides the same path-condition formulas
    over and over: consecutive program versions share most of their
    traces, and every rule of a book re-explores overlapping paths.  This
    module wraps {!Solver.solve} / {!Solver.check_trace} with a memo
    table keyed by the *id* of the simplified formula — formulas are
    hash-consed, so equal ids denote the same formula and a cached
    verdict is always sound to reuse.  The hit path allocates nothing:
    no rendering, one int hash probe (the pre-hash-consing cache keyed
    by canonical renderings rebuilt a string on every lookup).

    Concurrency: the store is two-level.  Each domain owns a *bounded
    front cache* in [Domain.DLS] — a warm hit there takes zero locks —
    which spills to a process-global store sharded by key, so domains
    only contend on a shard mutex when they miss locally on formulas
    that hash to the same shard.  Verdicts are deterministic functions
    of the formula and interned ids are never reused, so a front-cache
    entry can survive a global-shard capacity reset without ever lying:
    a stale entry still maps its id to the one verdict that formula
    has.  The cache is disabled by default so that code paths outside
    the engine behave exactly as before.  Hit/miss counters feed the
    engine's "solver calls saved" statistic; exactly one hit or miss is
    recorded per enabled query, so counter totals (and with them the
    engine's printed stats) are byte-identical to the single-mutex
    design at any jobs count. *)

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Sharded global store                                                *)
(* ------------------------------------------------------------------ *)

let shard_count = 16

let shard_mask = shard_count - 1

(* id -> (simplified formula, verdict).  The formula rides along purely
   for {!entries}/{!restore}: snapshots must re-key by re-interning in
   the loading process (ids are process-local), so the table has to
   remember what each id denoted.  Interned nodes are never evicted
   anyway, so this pins no extra memory. *)
type shard = {
  sh_lock : Mutex.t;
  sh_tbl : (int, Formula.t * Solver.verdict) Hashtbl.t;
}

let shards =
  Array.init shard_count (fun _ ->
      { sh_lock = Mutex.create (); sh_tbl = Hashtbl.create 128 })

let shard_of key = shards.(key land shard_mask)

(* Same total capacity as the historic single table (2^17), split
   evenly; a full shard resets alone, shedding 1/16 of the cache
   instead of cold-starting every domain at once. *)
let max_entries_per_shard = 1 lsl 13

(* global hits are probes answered by a shard; local hits are probes
   answered by the domain's front cache.  [hits] sums both, so one
   query still records exactly one hit or one miss. *)
let global_hit_count = Atomic.make 0

let local_hit_count = Atomic.make 0

let miss_count = Atomic.make 0

let hits () = Atomic.get global_hit_count + Atomic.get local_hit_count

let misses () = Atomic.get miss_count

let local_hits () = Atomic.get local_hit_count

(* Front-cache resets forced by the per-domain cap — eviction pressure:
   a hot workload whose working set exceeds [local_cap] churns here. *)
let local_evict_count = Atomic.make 0

let local_evictions () = Atomic.get local_evict_count

let size () =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sh_lock;
      let n = Hashtbl.length sh.sh_tbl in
      Mutex.unlock sh.sh_lock;
      acc + n)
    0 shards

(* Global store occupancy in [0, 1]: live entries over total capacity
   across all shards.  A ratio pinned near 1.0 under a growing workload
   means the store is insert-saturated and cold formulas can no longer
   be admitted. *)
let fill_ratio () =
  float_of_int (size ())
  /. float_of_int (Array.length shards * max_entries_per_shard)

(* ------------------------------------------------------------------ *)
(* Domain-local front cache                                            *)
(* ------------------------------------------------------------------ *)

(* Bounded id -> verdict table per domain.  Invalidation is by epoch:
   [reset] bumps the process epoch, and each domain lazily drops its
   front cache the next time it looks (a domain cannot safely clear
   another domain's table).  Overflow resets the local table only —
   the global store stays warm. *)
let epoch = Atomic.make 0

let local_cap = 1024

type local = {
  mutable l_epoch : int;
  l_tbl : (int, Solver.verdict) Hashtbl.t;
}

let local_key : local Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { l_epoch = Atomic.get epoch; l_tbl = Hashtbl.create 64 })

let local () =
  let l = Domain.DLS.get local_key in
  let e = Atomic.get epoch in
  if l.l_epoch <> e then begin
    Hashtbl.reset l.l_tbl;
    l.l_epoch <- e
  end;
  l

let store_local (l : local) (key : int) (v : Solver.verdict) : unit =
  if Hashtbl.length l.l_tbl >= local_cap then begin
    Atomic.incr local_evict_count;
    Hashtbl.reset l.l_tbl
  end;
  Hashtbl.replace l.l_tbl key v

(** Eagerly create (or epoch-sync) the calling domain's front cache;
    the engine's pool calls this at worker start so the first query on
    a fresh domain pays no setup. *)
let init_local () = ignore (local ())

let reset () =
  Array.iter
    (fun sh ->
      Mutex.lock sh.sh_lock;
      Hashtbl.reset sh.sh_tbl;
      Mutex.unlock sh.sh_lock)
    shards;
  Atomic.set global_hit_count 0;
  Atomic.set local_hit_count 0;
  Atomic.set miss_count 0;
  (* invalidate every domain's front cache lazily *)
  Atomic.incr epoch

(* ------------------------------------------------------------------ *)
(* The cached solve path                                               *)
(* ------------------------------------------------------------------ *)

(* The cache key: the interned id of the simplified formula.
   [Formula.simplify] dedups and flattens (modulo canonical atoms) and
   hash-consing makes ids injective on structure, so equal keys imply
   equal formulas — the soundness requirement.  Syntactically different
   but equivalent formulas may miss; that only costs a solver call.
   (Dropping an entry at a shard's capacity reset is equally harmless:
   ids are never reused, so a stale table can only miss, never lie.) *)
let key_of (f : Formula.t) : int * Formula.t =
  let s = Formula.simplify f in
  (Formula.id s, s)

(* The single lookup/store path both {!solve} and {!solve_in} run:
   front cache, then shard, then [solve_miss] on the simplified
   formula.  [Unknown] verdicts come from budgets, faults, or open
   breakers — transient conditions that must not poison either cache
   level; the next query recomputes. *)
let with_cache (f : Formula.t) (solve_miss : Formula.t -> Solver.verdict) :
    Solver.verdict =
  let key, simplified = key_of f in
  let l = local () in
  match Hashtbl.find_opt l.l_tbl key with
  | Some v ->
      Atomic.incr local_hit_count;
      v
  | None -> (
      let sh = shard_of key in
      let cached =
        Mutex.lock sh.sh_lock;
        let r = Hashtbl.find_opt sh.sh_tbl key in
        Mutex.unlock sh.sh_lock;
        r
      in
      match cached with
      | Some (_, v) ->
          Atomic.incr global_hit_count;
          store_local l key v;
          v
      | None -> (
          Atomic.incr miss_count;
          let v = solve_miss simplified in
          match v with
          | Solver.Unknown _ -> v
          | Solver.Sat _ | Solver.Unsat ->
              Mutex.lock sh.sh_lock;
              if Hashtbl.length sh.sh_tbl >= max_entries_per_shard then
                Hashtbl.reset sh.sh_tbl;
              Hashtbl.replace sh.sh_tbl key (simplified, v);
              Mutex.unlock sh.sh_lock;
              store_local l key v;
              v))

(** [solve f]: like {!Solver.solve}, but consults the verdict cache when
    enabled.  Verdicts (including models) are deterministic functions of
    the formula, so cached and uncached runs agree. *)
let solve (f : Formula.t) : Solver.verdict =
  if not (enabled ()) then Solver.solve f
  else with_cache f (fun simplified -> Solver.solve simplified)

(** Context-aware variant: like {!solve} but the miss path solves through
    {!Solver.solve_in_context}, reusing the assumption context's warm
    incremental state.  Same cache key (the simplified formula's id), so
    trie-driven and per-trace checking populate and hit the very same
    entries; [Unknown] is never stored, exactly as above. *)
let solve_in (ctx : Solver.context) (f : Formula.t) : Solver.verdict =
  if not (enabled ()) then Solver.solve_in_context ctx f
  else with_cache f (fun simplified -> Solver.solve_in_context ctx simplified)

(** Cached complement check (same contract as {!Solver.check_trace}). *)
let check_trace ~(pc : Formula.t) ~(checker : Formula.t) : Solver.trace_check =
  match solve (Formula.conj [ pc; Formula.negate checker ]) with
  | Solver.Unsat -> Solver.Verified
  | Solver.Sat model -> Solver.Violation model
  | Solver.Unknown reason -> Solver.Undecided reason

(** Cached direct check (same contract as {!Solver.check_trace_direct}). *)
let check_trace_direct ~(pc : Formula.t) ~(checker : Formula.t) :
    Solver.trace_check =
  match solve (Formula.conj [ pc; checker ]) with
  | Solver.Unsat -> Solver.Violation []
  | Solver.Sat _ -> Solver.Verified
  | Solver.Unknown reason -> Solver.Undecided reason

(** Trie-driven complement check: [ctx] holds the pc prefix the trie walk
    has pushed so far; the caller guarantees the context's assumptions
    conjoin to [pc] (so the full conjunction entails them).  Cache key
    and verdict are identical to {!check_trace} — the context only makes
    misses cheaper. *)
let check_trace_in (ctx : Solver.context) ~(pc : Formula.t)
    ~(checker : Formula.t) : Solver.trace_check =
  match solve_in ctx (Formula.conj [ pc; Formula.negate checker ]) with
  | Solver.Unsat -> Solver.Verified
  | Solver.Sat model -> Solver.Violation model
  | Solver.Unknown reason -> Solver.Undecided reason

(** Trie-driven direct check (contract of {!Solver.check_trace_direct}). *)
let check_trace_direct_in (ctx : Solver.context) ~(pc : Formula.t)
    ~(checker : Formula.t) : Solver.trace_check =
  match solve_in ctx (Formula.conj [ pc; checker ]) with
  | Solver.Unsat -> Solver.Violation []
  | Solver.Sat _ -> Solver.Verified
  | Solver.Unknown reason -> Solver.Undecided reason

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(** Every cached (simplified formula, verdict) pair, unordered.  The
    caller converts to {!Wire} forms before persisting — interned values
    must never be marshalled raw (ids are process-local). *)
let entries () : (Formula.t * Solver.verdict) list =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sh_lock;
      let es = Hashtbl.fold (fun _ e acc -> e :: acc) sh.sh_tbl acc in
      Mutex.unlock sh.sh_lock;
      es)
    [] shards

(** Seed the cache from a snapshot: each formula is re-simplified and
    re-keyed by its id {e in this process} (the loader already rebuilt
    it through the smart constructors).  [Unknown] verdicts and entries
    already present are skipped; counters are untouched — warm entries
    count as hits only when a query actually lands on them.  Entries
    are grouped by shard first, so each shard's lock is taken once per
    batch instead of once per entry.  Returns the number of entries
    added. *)
let restore (es : (Formula.t * Solver.verdict) list) : int =
  (* re-interning (key_of simplifies and hashes) runs outside any lock *)
  let groups : (int * Formula.t * Solver.verdict) list array =
    Array.make shard_count []
  in
  List.iter
    (fun (f, v) ->
      match v with
      | Solver.Unknown _ -> ()
      | Solver.Sat _ | Solver.Unsat ->
          let key, simplified = key_of f in
          let i = key land shard_mask in
          groups.(i) <- (key, simplified, v) :: groups.(i))
    es;
  let added = ref 0 in
  Array.iteri
    (fun i group ->
      match List.rev group (* preserve input order: first entry wins *) with
      | [] -> ()
      | group ->
          let sh = shards.(i) in
          Mutex.lock sh.sh_lock;
          List.iter
            (fun (key, simplified, v) ->
              if
                (not (Hashtbl.mem sh.sh_tbl key))
                && Hashtbl.length sh.sh_tbl < max_entries_per_shard
              then begin
                Hashtbl.replace sh.sh_tbl key (simplified, v);
                incr added
              end)
            group;
          Mutex.unlock sh.sh_lock)
    groups;
  !added
